"""Online dynamics: churn events, failure semantics, and live replanning."""

import math

import pytest

from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph
from repro.online import (
    ChurnConfig,
    LinkDegradation,
    LinkRecovery,
    NetworkPartition,
    NodeFailure,
    NodeJoin,
    NodeRecovery,
    OnlineController,
    PartitionHeal,
    random_churn,
    scripted_schedule,
)
from repro.placement.helix_milp import HelixMilpPlanner
from repro.scheduling import HelixScheduler
from repro.sim import Request, Simulation
from repro.sim.metrics import disruption_report, goodput_timeline


@pytest.fixture()
def placement8():
    return ModelPlacement.from_intervals(
        8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
    )


def make_simulation(cluster, model, placement, requests, scheduler_kwargs=None,
                    **kwargs):
    flow = FlowGraph(cluster, model, placement).solve()
    scheduler = HelixScheduler(
        cluster, model, placement, flow=flow, **(scheduler_kwargs or {})
    )
    return Simulation(cluster, model, placement, scheduler, requests, **kwargs)


class TestFailureSemantics:
    def test_fail_node_requeues_and_reroutes(
        self, small_cluster, tiny_model, placement8
    ):
        """Layer replicas absorb a failure: everything still finishes."""
        requests = [Request(f"r{i}", 32, 6, arrival_time=i * 0.01) for i in range(40)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)
        sim.schedule_event(0.05, lambda s: s.fail_node("a100-0"))
        metrics = sim.run()
        assert metrics.requests_finished == 40
        assert metrics.requests_retried > 0
        # No finished pipeline may route through the dead node.
        for i in range(40):
            record = sim.record_of(f"r{i}")
            assert record.finished
        assert "a100-0" in sim.down_nodes

    def test_failed_node_kv_state_is_lost(
        self, small_cluster, tiny_model, placement8
    ):
        requests = [Request(f"r{i}", 64, 12) for i in range(20)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)

        observed = {}

        def fail(s):
            observed["before"] = s.kv_pools["a100-0"].used_tokens
            s.fail_node("a100-0")
            observed["after"] = s.kv_pools["a100-0"].used_tokens

        sim.schedule_event(0.03, fail)
        sim.run()
        assert observed["before"] > 0
        assert observed["after"] == 0

    def test_kv_pools_drain_after_failure_and_recovery(
        self, small_cluster, tiny_model, placement8
    ):
        requests = [Request(f"r{i}", 32, 6) for i in range(30)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)
        sim.schedule_event(0.04, lambda s: s.fail_node("t4-1"))
        sim.schedule_event(0.30, lambda s: s.restore_node("t4-1"))
        metrics = sim.run()
        assert metrics.requests_finished == 30
        for pool in sim.kv_pools.values():
            assert pool.used_tokens == 0

    def test_fail_node_is_idempotent(self, small_cluster, tiny_model, placement8):
        requests = [Request("r0", 16, 2)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)
        sim.fail_node("t4-0")
        assert sim.fail_node("t4-0") == []
        sim.restore_node("t4-0")
        sim.restore_node("t4-0")  # no-op
        assert sim.run().requests_finished == 1

    def test_retry_metrics_and_tokens_lost(
        self, small_cluster, tiny_model, placement8
    ):
        requests = [Request(f"r{i}", 32, 20) for i in range(10)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)
        # Fail late enough that some decode tokens exist and are wasted.
        sim.schedule_event(0.2, lambda s: s.fail_node("a100-0"))
        metrics = sim.run()
        assert metrics.requests_finished == 10
        if metrics.requests_retried:
            assert metrics.tokens_lost >= 0
            retried = [
                sim.record_of(f"r{i}") for i in range(10)
                if sim.record_of(f"r{i}").retries > 0
            ]
            # Retried requests still generated their full output.
            assert all(r.tokens_generated == 20 for r in retried)


class TestPendingQueueUnderMasking:
    def test_pending_retry_path_with_kv_masking_and_failure(
        self, small_cluster, tiny_model, placement8
    ):
        """KV masking queues requests; a failure mid-drain still resolves."""
        flow = FlowGraph(small_cluster, tiny_model, placement8).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow,
            expected_output_len=4.0,
            kv_high_water_mark=0.2,  # tight: forces queuing
        )
        requests = [Request(f"r{i}", 512, 4) for i in range(120)]
        sim = Simulation(
            small_cluster, tiny_model, placement8, scheduler, requests,
            max_time=10_000.0,
        )
        sim.schedule_event(1.0, lambda s: s.fail_node("a100-0"))
        sim.schedule_event(5.0, lambda s: s.restore_node("a100-0"))
        metrics = sim.run()
        assert metrics.requests_finished == 120
        assert metrics.kv_overflow_events == 0

    def test_all_successors_down_pends_then_drains(
        self, small_cluster, tiny_model, placement8
    ):
        """When a selector's every successor is down, requests pend."""
        flow = FlowGraph(small_cluster, tiny_model, placement8).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow
        )
        # Both holders of layers [0, 4) down: the coordinator selector has
        # no live successor and scheduling must return None, not crash.
        scheduler.mark_node_down("a100-0")
        scheduler.mark_node_down("t4-1")
        assert scheduler.schedule("probe", 16) is None

        requests = [Request(f"r{i}", 16, 3, arrival_time=0.0) for i in range(5)]
        sim = Simulation(
            small_cluster, tiny_model, placement8, scheduler, requests,
            max_time=60.0,
        )
        sim._down_nodes.update({"a100-0", "t4-1"})
        sim.cluster.set_node_available("a100-0", False)
        sim.cluster.set_node_available("t4-1", False)
        sim.schedule_event(1.0, lambda s: s.restore_node("a100-0"))
        metrics = sim.run()
        assert metrics.requests_finished == 5
        # Nothing could schedule before the recovery at t=1.
        assert all(
            sim.record_of(f"r{i}").schedule_time >= 1.0 for i in range(5)
        )


class TestLinkEvents:
    def test_degrade_and_restore_link(self, small_cluster, tiny_model, placement8):
        requests = [Request("r0", 16, 2)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)
        original = small_cluster.link("a100-0", "l4-0").bandwidth
        sim.degrade_link("a100-0", "l4-0", 0.1)
        assert small_cluster.link("a100-0", "l4-0").bandwidth == pytest.approx(
            original * 0.1
        )
        assert small_cluster.link("l4-0", "a100-0").bandwidth == pytest.approx(
            original * 0.1
        )
        # The live channel sees the degraded link immediately.
        assert sim.channels[("a100-0", "l4-0")].link.bandwidth == pytest.approx(
            original * 0.1
        )
        # Degradation factors are relative to the original bandwidth.
        sim.degrade_link("a100-0", "l4-0", 0.5)
        assert small_cluster.link("a100-0", "l4-0").bandwidth == pytest.approx(
            original * 0.5
        )
        sim.restore_link("a100-0", "l4-0")
        assert small_cluster.link("a100-0", "l4-0").bandwidth == pytest.approx(
            original
        )

    def test_degrade_asymmetric_link_skips_missing_reverse(
        self, tiny_model
    ):
        from repro.cluster import presets

        cluster = presets.toy_cluster_fig2()  # all links unidirectional
        placement = ModelPlacement.from_intervals(
            8, {"a100": (0, 4), "t4-1": (4, 8), "t4-2": (4, 8)}
        )
        requests = [Request("r0", 16, 2)]
        sim = make_simulation(cluster, tiny_model, placement, requests)
        original = cluster.link("a100", "t4-1").bandwidth
        sim.degrade_link("a100", "t4-1", 0.5)  # no reverse link: no crash
        assert cluster.link("a100", "t4-1").bandwidth == pytest.approx(
            original * 0.5
        )
        assert not cluster.has_link("t4-1", "a100")
        sim.restore_link("a100", "t4-1")
        assert cluster.link("a100", "t4-1").bandwidth == pytest.approx(original)

    def test_flow_graph_refresh_links_tracks_degradation(
        self, small_cluster, tiny_model, placement8
    ):
        graph = FlowGraph(small_cluster, tiny_model, placement8)
        before = graph.solve().max_flow
        for nid in ("a100-0", "t4-1"):
            small_cluster.set_link_bandwidth("coordinator", nid, 1e3)
        changed = graph.refresh_links()
        assert ("coordinator", "a100-0") in changed
        after = graph.solve().max_flow
        assert after < before
        # A no-op refresh reports nothing and keeps the cached solution.
        assert graph.refresh_links() == []

    def test_partition_and_heal_events(self, small_cluster, tiny_model, placement8):
        requests = [Request("r0", 16, 2)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)
        original = small_cluster.link("a100-0", "l4-0").bandwidth
        partition = NetworkPartition(
            0.0, group_a=("a100-0",), group_b=("l4-0", "t4-0"), factor=0.02
        )
        heal = PartitionHeal(
            0.0, group_a=("a100-0",), group_b=("l4-0", "t4-0")
        )
        partition.apply(sim)
        # Both directions of the cut crawl.
        assert small_cluster.link("a100-0", "l4-0").bandwidth == pytest.approx(
            original * 0.02
        )
        assert small_cluster.link("l4-0", "a100-0").bandwidth == pytest.approx(
            original * 0.02
        )
        heal.apply(sim)
        assert small_cluster.link("a100-0", "l4-0").bandwidth == pytest.approx(
            original
        )
        assert small_cluster.link("l4-0", "a100-0").bandwidth == pytest.approx(
            original
        )


class TestPlacementHotSwap:
    def test_apply_placement_migrates_invalidated_requests(
        self, small_cluster, tiny_model, placement8
    ):
        requests = [Request(f"r{i}", 64, 30) for i in range(12)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)

        swapped = ModelPlacement.from_intervals(
            8,
            {"a100-0": (0, 8), "l4-0": (0, 4), "t4-0": (4, 8), "t4-1": (0, 4)},
        )

        def swap(s):
            flow = FlowGraph(small_cluster, tiny_model, swapped).solve()
            migrated = s.apply_placement(swapped, flow)
            assert migrated  # in-flight pipelines crossed changed nodes

        sim.schedule_event(0.2, swap)
        metrics = sim.run()
        assert metrics.requests_finished == 12
        assert metrics.requests_migrated > 0
        for pool in sim.kv_pools.values():
            assert pool.used_tokens == 0

    def test_grown_interval_rebind_migrates_resident_requests(
        self, small_cluster, tiny_model, placement8
    ):
        """A node whose interval *grows* is re-bound; requests there must
        be migrated even though their stage still fits the new interval."""
        requests = [Request(f"r{i}", 64, 40) for i in range(10)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)

        # a100-0 grows from [0, 4) to [0, 8): stages [0, 4) on it still fit,
        # but the executor/KV rebind would orphan their in-flight work.
        grown = ModelPlacement.from_intervals(
            8,
            {"a100-0": (0, 8), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)},
        )

        def swap(s):
            flow = FlowGraph(small_cluster, tiny_model, grown).solve()
            migrated = s.apply_placement(grown, flow)
            assert migrated
            # No active pipeline may still carry an old-interval stage on
            # the re-bound node (retries may already use the new [0, 8)).
            for active in s._active.values():
                for stage in active.pipeline.stages:
                    if stage.node_id == "a100-0":
                        assert (stage.start, stage.end) == (0, 8)

        sim.schedule_event(0.3, swap)
        metrics = sim.run()
        assert metrics.requests_finished == 10  # nobody got orphaned

    def test_apply_placement_rejects_empty_flow_before_mutating(
        self, small_cluster, tiny_model, placement8
    ):
        from types import SimpleNamespace

        from repro.core.errors import SimulationError

        requests = [Request("r0", 16, 2)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)
        other = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 8), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        with pytest.raises(SimulationError, match="no flow"):
            sim.apply_placement(other, SimpleNamespace(max_flow=0.0))
        assert sim.placement is placement8  # nothing was mutated

    def test_rebind_preserves_overflow_history(
        self, small_cluster, tiny_model, placement8
    ):
        requests = [Request("r0", 16, 2)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)
        sim.kv_pools["a100-0"].overflow_events = 3
        grown = ModelPlacement.from_intervals(
            8,
            {"a100-0": (0, 8), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)},
        )
        flow = FlowGraph(small_cluster, tiny_model, grown).solve()
        sim.apply_placement(grown, flow)  # a100-0 is re-bound
        assert sim.kv_pools["a100-0"].overflow_events == 3
        assert sim.run().kv_overflow_events >= 3

    def test_fail_joined_node_that_never_served(
        self, small_cluster, tiny_model, placement8
    ):
        requests = [Request("r0", 16, 2)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)
        from repro.cluster import L4

        small_cluster.add_node("late", L4, region="r0")
        small_cluster.connect("coordinator", "late", 1e9)
        assert sim.fail_node("late") == []  # no epoch entry yet; no crash
        sim.restore_node("late")
        assert sim.run().requests_finished == 1

    def test_scheduler_hot_swap_rebuilds_selectors(
        self, small_cluster, tiny_model, placement8
    ):
        flow = FlowGraph(small_cluster, tiny_model, placement8).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow
        )
        degraded = ModelPlacement.from_intervals(
            8, {"t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        degraded_flow = FlowGraph(small_cluster, tiny_model, degraded).solve()
        scheduler.apply_placement(degraded, flow=degraded_flow)
        weights = scheduler.selector_weights("coordinator")
        assert "a100-0" not in weights
        assert "t4-1" in weights


class TestOnlineController:
    def test_fail_replan_recover_end_to_end(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        flow = FlowGraph(small_cluster, tiny_model, placement).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement, flow=flow
        )
        requests = [
            Request(f"r{i}", 32, 8, arrival_time=i * 0.002) for i in range(400)
        ]
        events = scripted_schedule(
            NodeFailure(0.3, "a100-0"),
            NodeRecovery(0.8, "a100-0"),
            NodeFailure(1.2, "a100-0"),
            NodeRecovery(1.6, "a100-0"),
        )
        controller = OnlineController(
            tiny_model, events=events, replan_lns_rounds=1,
            replan_time_limit=0.5,
        )
        sim = Simulation(
            small_cluster, tiny_model, placement, scheduler, requests,
            max_time=5.0, seed=0, controller=controller,
        )
        metrics = sim.run()
        assert metrics.requests_finished == 400
        assert metrics.requests_retried > 0
        statuses = [r.status for r in controller.replans]
        assert "applied" in statuses
        assert len(controller.event_log) == 4
        # Only the failures are disruptions; recoveries replan but do not
        # move the disruption clock.
        assert controller.disruption_times == [0.3, 1.2]
        # Every recovery invalidates the planner cache (the restored
        # node's links were absent from the cached formulations), so only
        # the membership seen since the last recovery is still cached.
        assert len(controller._planners) == 1
        report = controller.report(sim, window=0.25)
        assert report.replan_count >= 1
        assert report.requests_retried == metrics.requests_retried

    def test_unique_layer_holder_failure_needs_replan(
        self, small_cluster, tiny_model
    ):
        """Fast path fails (lost layers), the LNS replan repairs coverage."""
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        flow = FlowGraph(small_cluster, tiny_model, placement).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement, flow=flow
        )
        requests = [
            Request(f"r{i}", 32, 6, arrival_time=i * 0.005) for i in range(100)
        ]
        controller = OnlineController(
            tiny_model, events=[NodeFailure(0.2, "a100-0")],
            replan_lns_rounds=1, replan_time_limit=0.5,
        )
        sim = Simulation(
            small_cluster, tiny_model, placement, scheduler, requests,
            max_time=10.0, seed=0, controller=controller,
        )
        metrics = sim.run()
        # a100-0 held layers [0, 4) alone: only the replan (re-spreading
        # layers over t4-1 and the survivors) can restore serving.
        assert metrics.requests_finished == 100
        record = controller.replans[-1]
        assert record.status == "applied"
        assert "a100-0" not in {
            nid for nid in sim.placement.used_nodes
        }

    def test_replan_disabled_leaves_degraded_flow(
        self, small_cluster, tiny_model
    ):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        flow = FlowGraph(small_cluster, tiny_model, placement).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement, flow=flow
        )
        requests = [Request(f"r{i}", 32, 4) for i in range(50)]
        controller = OnlineController(
            tiny_model, events=[NodeFailure(0.1, "t4-1")], replan=False
        )
        sim = Simulation(
            small_cluster, tiny_model, placement, scheduler, requests,
            max_time=30.0, seed=0, controller=controller,
        )
        metrics = sim.run()
        assert metrics.requests_finished == 50
        assert [r.status for r in controller.replans] == ["degraded-only"]
        assert "t4-1" not in sim.placement.used_nodes

    def test_replan_disabled_recovery_restores_assignment(
        self, small_cluster, tiny_model
    ):
        """Without replanning, a recovered node regains its old layers
        (tier 1 degrades the *reference* placement, not the live one)."""
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        flow = FlowGraph(small_cluster, tiny_model, placement).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement, flow=flow
        )
        requests = [
            Request(f"r{i}", 32, 5, arrival_time=i * 0.01) for i in range(80)
        ]
        events = [NodeFailure(0.2, "t4-1"), NodeRecovery(0.5, "t4-1")]
        controller = OnlineController(
            tiny_model, events=events, replan=False
        )
        sim = Simulation(
            small_cluster, tiny_model, placement, scheduler, requests,
            max_time=30.0, seed=0, controller=controller,
        )
        metrics = sim.run()
        assert metrics.requests_finished == 80
        assert "t4-1" in sim.placement.used_nodes
        assert sim.placement.interval("t4-1").start == 0

    def test_first_event_link_degradation_reweights_selectors(
        self, small_cluster, tiny_model
    ):
        """Tier 1 must hot-swap even when its flow graph is built after
        the degradation already applied (refresh_links sees no delta)."""
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        flow = FlowGraph(small_cluster, tiny_model, placement).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement, flow=flow
        )
        before = dict(scheduler.selector_weights("coordinator"))
        requests = [Request(f"r{i}", 32, 4) for i in range(30)]
        # Token-id links are light (4 B/token), so the degradation must be
        # extreme before the link binds below the node's throughput.
        controller = OnlineController(
            tiny_model,
            events=[LinkDegradation(0.1, "coordinator", "a100-0", 1e-5)],
            replan=False,
        )
        sim = Simulation(
            small_cluster, tiny_model, placement, scheduler, requests,
            max_time=60.0, seed=0, controller=controller,
        )
        metrics = sim.run()
        assert metrics.requests_finished == 30
        after = scheduler.selector_weights("coordinator")
        # The coordinator->a100-0 weight collapsed to the link capacity.
        assert after.get("a100-0", 0.0) < before["a100-0"] * 0.5

    def test_replan_delay_defers_the_swap_and_records_migration(
        self, small_cluster, tiny_model
    ):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        flow = FlowGraph(small_cluster, tiny_model, placement).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement, flow=flow
        )
        requests = [
            Request(f"r{i}", 32, 6, arrival_time=i * 0.005) for i in range(80)
        ]
        controller = OnlineController(
            tiny_model, events=[NodeFailure(0.2, "a100-0")],
            replan_lns_rounds=1, replan_time_limit=0.5, replan_delay=0.25,
        )
        sim = Simulation(
            small_cluster, tiny_model, placement, scheduler, requests,
            max_time=10.0, seed=0, controller=controller,
        )
        metrics = sim.run()
        assert metrics.requests_finished == 80
        record = controller.replans[-1]
        assert record.status == "applied"
        # The deferred swap back-fills the migration count when it applies.
        assert record.migrated >= 0
        assert "a100-0" not in sim.placement.used_nodes

    def test_deferred_swap_cut_by_horizon_stays_scheduled(
        self, small_cluster, tiny_model
    ):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        flow = FlowGraph(small_cluster, tiny_model, placement).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement, flow=flow
        )
        requests = [Request(f"r{i}", 32, 50) for i in range(20)]
        controller = OnlineController(
            tiny_model, events=[NodeFailure(0.4, "t4-1")],
            replan_lns_rounds=1, replan_time_limit=0.5, replan_delay=10.0,
        )
        sim = Simulation(
            small_cluster, tiny_model, placement, scheduler, requests,
            max_time=0.5, seed=0, controller=controller,  # swap never lands
        )
        sim.run()
        assert [r.status for r in controller.replans] == ["scheduled"]
        assert controller.applied_replans == []

    def test_node_join_expands_the_cluster(self, small_cluster, tiny_model):
        from repro.cluster import L4

        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        flow = FlowGraph(small_cluster, tiny_model, placement).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement, flow=flow
        )
        requests = [
            Request(f"r{i}", 32, 6, arrival_time=i * 0.002) for i in range(200)
        ]
        join = NodeJoin(0.2, node_id="l4-new", gpu=L4, region="r0")
        controller = OnlineController(
            tiny_model, events=[join], replan_lns_rounds=1,
            replan_time_limit=0.5,
        )
        sim = Simulation(
            small_cluster, tiny_model, placement, scheduler, requests,
            max_time=5.0, seed=0, controller=controller,
        )
        metrics = sim.run()
        assert metrics.requests_finished == 200
        assert "l4-new" in small_cluster.node_ids
        assert controller.replans[-1].status == "applied"
        # The joined node was put to work by the replan.
        assert "l4-new" in sim.placement.used_nodes

    def test_seeded_runs_are_reproducible(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )

        def run(seed):
            events = random_churn(
                small_cluster.node_ids,
                ChurnConfig(
                    duration=2.0,
                    mean_time_to_failure=0.6,
                    mean_time_to_recovery=0.4,
                ),
                seed=seed,
            )
            flow = FlowGraph(small_cluster, tiny_model, placement).solve()
            scheduler = HelixScheduler(
                small_cluster, tiny_model, placement, flow=flow
            )
            requests = [
                Request(f"r{i}", 24, 5, arrival_time=i * 0.004)
                for i in range(150)
            ]
            controller = OnlineController(
                tiny_model, events=events, replan_lns_rounds=1,
                replan_time_limit=0.5,
            )
            sim = Simulation(
                small_cluster, tiny_model, placement, scheduler, requests,
                max_time=6.0, seed=seed, controller=controller,
            )
            metrics = sim.run()
            for nid in list(sim.down_nodes):
                sim.cluster.set_node_available(nid, True)  # reset fixture
            return (
                metrics.decode_throughput,
                metrics.requests_finished,
                metrics.requests_retried,
                metrics.tokens_lost,
                tuple(t for t, _ in controller.event_log),
            )

        first = run(seed=7)
        second = run(seed=7)
        different = run(seed=8)
        assert first == second
        assert first[4] != different[4]  # the churn schedule moved


class TestChurnGeneration:
    def test_random_churn_is_deterministic(self):
        config = ChurnConfig(
            duration=100.0,
            mean_time_to_failure=10.0,
            mean_time_to_recovery=5.0,
            link_mean_time_to_degrade=15.0,
        )
        nodes = [f"n{i}" for i in range(6)]
        links = [("n0", "n1"), ("n2", "n3")]
        a = random_churn(nodes, config, seed=3, link_keys=links)
        b = random_churn(nodes, config, seed=3, link_keys=links)
        assert a == b
        assert a != random_churn(nodes, config, seed=4, link_keys=links)

    def test_random_churn_pairs_failures_with_recoveries(self):
        config = ChurnConfig(
            duration=200.0, mean_time_to_failure=8.0, mean_time_to_recovery=4.0
        )
        events = random_churn([f"n{i}" for i in range(4)], config, seed=0)
        failures = [e for e in events if isinstance(e, NodeFailure)]
        recoveries = [e for e in events if isinstance(e, NodeRecovery)]
        assert failures and len(failures) == len(recoveries)
        assert events == sorted(events, key=lambda e: e.time)
        # max_concurrent_failures=1: failures never overlap.
        down_until = 0.0
        for failure in failures:
            assert failure.time >= down_until
            recovery = next(
                r for r in recoveries if r.node_id == failure.node_id
                and r.time > failure.time
            )
            down_until = recovery.time

    def test_link_churn_emits_degradations(self):
        config = ChurnConfig(
            duration=300.0,
            mean_time_to_failure=1e9,  # node churn off
            mean_time_to_recovery=1.0,
            link_mean_time_to_degrade=10.0,
            link_degradation_factor=0.25,
        )
        events = random_churn(
            ["n0", "n1"], config, seed=1, link_keys=[("n0", "n1")]
        )
        degradations = [e for e in events if isinstance(e, LinkDegradation)]
        repairs = [e for e in events if isinstance(e, LinkRecovery)]
        assert degradations and len(degradations) == len(repairs)
        assert all(e.factor == 0.25 for e in degradations)


class TestDisruptionMetrics:
    def test_goodput_timeline_buckets(self):
        times = [0.1, 0.2, 1.5, 2.1, 2.2, 2.3, 9.9]
        timeline = goodput_timeline(times, window=1.0, end_time=3.0)
        assert timeline == [(0.0, 2.0), (1.0, 1.0), (2.0, 3.0)]
        assert goodput_timeline([], window=1.0, end_time=0.5) == []
        with pytest.raises(ValueError, match="window"):
            goodput_timeline(times, window=0.0, end_time=3.0)

    def test_goodput_timeline_horizon_end_token_joins_final_bucket(self):
        # A token emitted exactly at the covered horizon end must land in
        # the final bucket, not a phantom bucket past the horizon.
        timeline = goodput_timeline([0.5, 1.5, 3.0], window=1.0, end_time=3.0)
        assert timeline == [(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]
        # Past the horizon (not exactly on it) is still dropped.
        timeline = goodput_timeline([0.5, 3.25], window=1.0, end_time=3.0)
        assert timeline == [(0.0, 1.0), (1.0, 0.0), (2.0, 0.0)]

    def test_goodput_timeline_rejects_non_multiple_window(self):
        # Bucketed token times only reproduce the exact curve when the
        # window is an integer multiple of the timeline resolution.
        with pytest.raises(ValueError, match="multiple"):
            goodput_timeline(
                [0.1], window=0.75, end_time=3.0, resolution=0.5
            )
        with pytest.raises(ValueError, match="resolution"):
            goodput_timeline(
                [0.1], window=1.0, end_time=3.0, resolution=0.0
            )
        assert goodput_timeline(
            [0.1], window=1.0, end_time=1.0, resolution=0.5
        ) == [(0.0, 1.0)]

    def test_goodput_timeline_excludes_pre_window_tokens(self):
        # int() truncates toward zero: a token at start-0.5 must not land
        # in bucket 0.
        timeline = goodput_timeline(
            [4.5, 5.5], window=1.0, end_time=10.0, start=5.0
        )
        assert timeline[0] == (5.0, 1.0)

    def test_disruption_report_math(self):
        # 10 tok/s for 10s, outage at 10-12, 8 tok/s afterwards.
        times = [i * 0.1 for i in range(100)]
        times += [12.0 + i * 0.125 for i in range(64)]
        report = disruption_report(
            times,
            window=2.0,
            end_time=20.0,
            first_disruption=10.0,
            recovered_from=12.0,
            replan_latencies=[0.5, 0.3],
            requests_retried=3,
        )
        assert report.pre_disruption_goodput == pytest.approx(10.0)
        assert report.post_recovery_goodput == pytest.approx(8.0)
        assert report.recovery_ratio == pytest.approx(0.8)
        # The outage bucket [10, 12) is dead; goodput regains 70% of its
        # pre-disruption level in the bucket starting at 12.
        assert report.time_to_recovery == pytest.approx(2.0)
        assert report.replan_count == 2
        assert report.replan_latency_max == pytest.approx(0.5)
        assert report.requests_retried == 3
        assert "recovery 80%" in report.summary()

    def test_disruption_report_without_pre_window(self):
        report = disruption_report(
            [0.5, 1.5],
            window=1.0,
            end_time=2.0,
            first_disruption=0.0,
            recovered_from=0.0,
        )
        assert math.isnan(report.pre_disruption_goodput)
        assert math.isnan(report.recovery_ratio)


class TestReplanEntryPoint:
    def test_replan_improves_unservable_base(self, small_cluster, tiny_model):
        base = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        survivors = small_cluster.subcluster(["l4-0", "t4-0", "t4-1"])
        planner = HelixMilpPlanner(
            survivors, tiny_model, time_limit=5.0,
            lns_time_limit=0.5, mip_rel_gap=0.05,
        )
        result = planner.replan(base=base, lns_rounds=1)
        assert result.max_throughput > 0
        result.placement.validate()
        assert set(result.placement.used_nodes) <= {"l4-0", "t4-0", "t4-1"}

    def test_replan_keeps_servable_base_value(self, small_cluster, tiny_model):
        base = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        planner = HelixMilpPlanner(
            small_cluster, tiny_model, time_limit=5.0,
            lns_time_limit=0.5, mip_rel_gap=0.05,
        )
        base_value = planner.placement_throughput(base)
        result = planner.replan(base=base, lns_rounds=2)
        assert result.max_throughput >= base_value - 1e-6


@pytest.mark.perf
def test_online_churn_bench_meets_acceptance(tmp_path):
    """The fig12-small kill-a-planned-node scenario, tier-1 sized.

    Acceptance: windowed goodput recovers to >= 70% of its pre-failure
    level after the repaired placement applies, and the replanning itself
    rides the incremental paths (warm-started LNS re-solve < 2 s wall).
    """
    import json

    from repro.bench.perftrack import run_online_bench

    path = tmp_path / "BENCH_online.json"
    doc = run_online_bench(smoke=True, path=path)
    assert path.exists()
    on_disk = json.loads(path.read_text())
    assert on_disk["derived"] == doc["derived"]
    derived = doc["derived"]
    assert derived["online_recovery_ratio"] >= 0.7, (
        "fig12 churn scenario failed to recover: "
        f"ratio {derived['online_recovery_ratio']:.2f}"
    )
    assert derived["online_replan_wall_s"] < 2.0
    assert derived["online_replan_count"] >= 1
    assert derived["online_requests_retried"] > 0
    assert derived["online_kv_overflows"] == 0


class TestScheduleValidation:
    """validate_schedule rejects malformed schedules before the run."""

    def test_valid_schedule_passes(self, small_cluster):
        from repro.online import validate_schedule

        validate_schedule(
            [
                NodeFailure(1.0, "a100-0"),
                NodeRecovery(2.0, "a100-0"),
                LinkDegradation(3.0, "a100-0", "l4-0"),
                LinkRecovery(4.0, "a100-0", "l4-0"),
            ],
            small_cluster,
        )

    def test_negative_time_rejected(self, small_cluster):
        from repro.core.errors import ClusterError
        from repro.online import validate_schedule

        with pytest.raises(ClusterError, match="negative time"):
            validate_schedule([NodeFailure(-1.0, "a100-0")], small_cluster)

    def test_unknown_node_rejected(self, small_cluster):
        from repro.core.errors import ClusterError
        from repro.online import validate_schedule

        with pytest.raises(ClusterError, match="unknown node"):
            validate_schedule([NodeFailure(1.0, "nope-0")], small_cluster)

    def test_unknown_link_rejected(self, small_cluster):
        from repro.core.errors import ClusterError
        from repro.online import validate_schedule

        with pytest.raises(ClusterError, match="unknown link"):
            validate_schedule(
                [LinkDegradation(1.0, "a100-0", "nope-0")], small_cluster
            )

    def test_recovery_without_failure_rejected(self, small_cluster):
        from repro.core.errors import ClusterError
        from repro.online import validate_schedule

        with pytest.raises(ClusterError, match="never failed"):
            validate_schedule([NodeRecovery(1.0, "a100-0")], small_cluster)

    def test_zombie_counts_as_failure_for_recovery(self, small_cluster):
        from repro.online import ZombieNode, validate_schedule

        validate_schedule(
            [ZombieNode(1.0, "t4-0"), NodeRecovery(5.0, "t4-0")],
            small_cluster,
        )

    def test_overlapping_partitions_rejected(self, small_cluster):
        from repro.core.errors import ClusterError
        from repro.online import validate_schedule

        with pytest.raises(ClusterError, match="overlaps"):
            validate_schedule(
                [
                    NetworkPartition(1.0, ("a100-0",), ("t4-0",)),
                    NetworkPartition(2.0, ("a100-0",), ("t4-1",)),
                ],
                small_cluster,
            )

    def test_healed_partition_allows_reuse(self, small_cluster):
        from repro.online import validate_schedule

        validate_schedule(
            [
                NetworkPartition(1.0, ("a100-0",), ("t4-0",)),
                PartitionHeal(2.0, ("a100-0",), ("t4-0",)),
                NetworkPartition(3.0, ("a100-0",), ("t4-1",)),
            ],
            small_cluster,
        )

    def test_node_join_collision_rejected(self, small_cluster):
        from repro.cluster import T4
        from repro.core.errors import ClusterError
        from repro.online import validate_schedule

        with pytest.raises(ClusterError, match="collides"):
            validate_schedule(
                [NodeJoin(1.0, "a100-0", gpu=T4)], small_cluster
            )

    def test_controller_start_validates(self, small_cluster, tiny_model,
                                        placement8):
        from repro.core.errors import ClusterError

        requests = [Request("r0", 16, 2)]
        flow = FlowGraph(small_cluster, tiny_model, placement8).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow
        )
        controller = OnlineController(
            tiny_model, events=[NodeFailure(1.0, "typo-node")], replan=False
        )
        sim = Simulation(
            small_cluster, tiny_model, placement8, scheduler, requests,
            controller=controller,
        )
        with pytest.raises(ClusterError, match="unknown node"):
            sim.run()


class TestDetectorDeterminism:
    """Same seed + schedule => identical detection behavior (satellite)."""

    @staticmethod
    def _run_chaos(seed):
        from repro.bench.runner import make_scheduler
        from repro.scenarios.generator import generate_scenario
        from repro.testkit.harness import _plan

        scenario = generate_scenario("chaos", seed, "smoke")
        _, _, planner_result = _plan(scenario)
        scheduler = make_scheduler(
            scenario.scheduler_method, scenario.cluster, scenario.model,
            planner_result, seed=scenario.seed,
        )
        controller = OnlineController(
            scenario.model, events=scenario.churn, replan=False,
            detection_mode=True,
        )
        sim = Simulation(
            scenario.cluster, scenario.model, planner_result.placement,
            scheduler, scenario.requests, max_time=scenario.max_time,
            seed=scenario.seed, controller=controller,
            policy=scenario.policy, debug_validate=True,
        )
        sim.run()
        detector = controller.detector
        return (
            detector.timeline,
            controller.detections,
            detector.false_positives,
            detector.heartbeats_sent,
            detector.heartbeats_dropped,
            sim.token_timeline,
        )

    @pytest.mark.parametrize("seed", [0, 3])
    def test_same_seed_identical_detection(self, seed):
        first = self._run_chaos(seed)
        second = self._run_chaos(seed)
        assert first == second

    def test_detection_actually_happens(self):
        timeline, detections, false_positives, *_ = self._run_chaos(0)
        assert detections, "seed 0 must exercise a confirmed detection"
        assert false_positives == 0
        assert any(row[1].startswith("suspect:") for row in timeline)
        assert any(row[1].startswith("confirm:") for row in timeline)


class TestPhiAccrualPaths:
    """Exercise the heartbeat/phi branches the watchdog usually shadows."""

    def test_crash_detected_by_phi_when_watchdog_disabled(
        self, small_cluster, tiny_model, placement8
    ):
        from repro.online import DetectorConfig

        requests = [
            Request(f"r{i}", 32, 8, arrival_time=i * 0.2) for i in range(60)
        ]
        flow = FlowGraph(small_cluster, tiny_model, placement8).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow
        )
        controller = OnlineController(
            tiny_model,
            events=[NodeFailure(2.0, "a100-0")],
            replan=False,
            detection_mode=True,
            # Effectively disable the progress watchdog so the missing
            # heartbeats (phi accrual) must carry the detection.
            detector_config=DetectorConfig(zombie_timeout=1e9),
        )
        sim = Simulation(
            small_cluster, tiny_model, placement8, scheduler, requests,
            max_time=60.0, seed=0, controller=controller,
        )
        metrics = sim.run()
        assert len(controller.detections) == 1
        _, node_id, kind, mttd = controller.detections[0]
        assert node_id == "a100-0"
        assert kind == "crash"
        assert 0.0 < mttd < 15.0
        assert controller.detector.false_positives == 0
        assert metrics.requests_finished == 60

    def test_flap_clears_suspicion_damps_threshold_and_counts_fp(self):
        """A late heartbeat while suspected = a flap: clear + damp + FP."""
        from repro.online import DetectorConfig, FailureDetector

        class FakeSim:
            def __init__(self):
                self.now = 0.0
                self.down_nodes = set()
                self.silent_down_nodes = set()
                self.channels = {}
                self.executors = {}
                self.fault_times = {}
                self.scheduled = []

            def schedule_event(self, when, fn):
                self.scheduled.append((when, fn))

        from repro.online.detect import _NodeState

        sim = FakeSim()
        config = DetectorConfig(min_samples=3, phi_threshold=2.0)
        detector = FailureDetector(sim, config)
        detector._nodes["n0"] = state = _NodeState(0.0, config.phi_threshold)
        # Three on-time heartbeats establish the interval window.
        for t in (0.25, 0.5, 0.75):
            sim.now = t
            detector._on_heartbeat("n0")
        assert len(state.intervals) == 3
        # Silence long enough that phi crosses the threshold.
        sim.now = 3.0
        detector._check()
        assert detector.suspected == {"n0": "crash"}
        assert (3.0, "suspect:crash", "n0") in detector.timeline
        # The node heartbeats after all: suspicion clears, the threshold
        # damps, and (no ground-truth fault) a false positive is counted.
        sim.now = 3.1
        detector._on_heartbeat("n0")
        assert detector.suspected == {}
        assert state.threshold == config.phi_threshold * config.flap_damping
        assert detector.false_positives == 1
        assert any(row[1] == "clear:crash" for row in detector.timeline)
