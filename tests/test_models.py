"""Tests for model specs and the memory accounting behind Table 1."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.units import GB
from repro.models.memory import (
    kv_token_capacity,
    max_layers_on_vram,
    min_gpus_required,
    usable_weight_vram,
    weight_bytes_total,
)
from repro.models.specs import (
    GPT3_175B,
    GROK_314B,
    LLAMA3_405B,
    LLAMA_30B,
    LLAMA_70B,
    MODEL_CATALOG,
    ModelSpec,
    get_model,
)


class TestModelSpec:
    def test_llama70b_architecture_constants(self):
        assert LLAMA_70B.num_layers == 80
        assert LLAMA_70B.head_dim == 128
        assert LLAMA_70B.kv_dim == 1024  # 8 KV heads under GQA

    def test_llama70b_activation_is_16kb(self):
        # The paper's Fig. 2 example: activation size 16 KB for LLaMA-2 70B.
        assert LLAMA_70B.activation_bytes_per_token == 16384

    def test_llama70b_kv_bytes_per_token_layer(self):
        # K and V, each 1024 wide, FP16.
        assert LLAMA_70B.kv_bytes_per_token_layer == 4096

    def test_params_per_layer_close_to_nominal(self):
        # Architecture-derived totals land near published counts.
        ratio = LLAMA_70B.total_layer_params / LLAMA_70B.nominal_params
        assert 0.9 < ratio < 1.05

    def test_gpt3_uses_two_mlp_matrices(self):
        assert GPT3_175B.mlp_matrices == 2
        ratio = GPT3_175B.total_layer_params / GPT3_175B.nominal_params
        assert 0.9 < ratio < 1.05

    def test_grok_uses_override(self):
        assert GROK_314B.params_per_layer == pytest.approx(314e9 / 64)

    def test_flops_per_token_layer(self):
        assert LLAMA_70B.flops_per_token_layer() == pytest.approx(
            2.0 * LLAMA_70B.params_per_layer
        )

    def test_rejects_invalid_gqa(self):
        with pytest.raises(ValueError, match="multiple"):
            ModelSpec(
                name="bad", num_layers=2, hidden_size=64, num_heads=7,
                num_kv_heads=2, intermediate_size=128,
            )

    def test_rejects_nonpositive_layers(self):
        with pytest.raises(ValueError, match="num_layers"):
            ModelSpec(
                name="bad", num_layers=0, hidden_size=64, num_heads=4,
                num_kv_heads=4, intermediate_size=128,
            )

    def test_catalog_lookup(self):
        assert get_model("LLaMA-70B") is LLAMA_70B
        with pytest.raises(KeyError, match="known models"):
            get_model("nope")

    def test_catalog_names_consistent(self):
        for name, spec in MODEL_CATALOG.items():
            assert spec.name == name


class TestTable1:
    """The paper's Table 1, cell by cell."""

    @pytest.mark.parametrize(
        "model,expected",
        [
            (LLAMA_70B, (12, 7, 4)),
            (GPT3_175B, (30, 18, 9)),
            (GROK_314B, (53, 32, 16)),
            (LLAMA3_405B, (68, 41, 21)),
        ],
    )
    def test_min_gpus_match_paper(self, model, expected):
        l4, a100, h100 = expected
        assert min_gpus_required(model, 24 * GB) == l4
        assert min_gpus_required(model, 40 * GB) == a100
        assert min_gpus_required(model, 80 * GB) == h100


class TestLayerBounds:
    def test_case_study_layer_counts(self):
        # Figs. 9b/10b show T4 = 4, L4 = 7, A100 = 11 layers of LLaMA-70B.
        assert max_layers_on_vram(LLAMA_70B, 16 * GB) == 4
        assert max_layers_on_vram(LLAMA_70B, 24 * GB) == 7
        assert max_layers_on_vram(LLAMA_70B, 40 * GB) == 11

    def test_weight_fraction_relaxation_increases_layers(self):
        strict = max_layers_on_vram(LLAMA_70B, 16 * GB, 0.5)
        relaxed = max_layers_on_vram(LLAMA_70B, 16 * GB, 0.9)
        assert relaxed > strict

    def test_usable_weight_vram_validates(self):
        with pytest.raises(ValueError):
            usable_weight_vram(16 * GB, 0.0)
        with pytest.raises(ValueError):
            usable_weight_vram(16 * GB, 1.5)

    def test_weight_bytes_nominal_vs_architectural(self):
        nominal = weight_bytes_total(LLAMA_70B, nominal=True)
        arch = weight_bytes_total(LLAMA_70B, nominal=False)
        assert nominal == pytest.approx(140e9)
        assert arch != nominal


class TestKVCapacity:
    def test_zero_layers_zero_capacity(self):
        assert kv_token_capacity(LLAMA_70B, 16 * GB, 0) == 0

    def test_capacity_shrinks_with_more_layers(self):
        few = kv_token_capacity(LLAMA_70B, 40 * GB, 4)
        many = kv_token_capacity(LLAMA_70B, 40 * GB, 11)
        assert few > many > 0

    def test_overfull_weights_leave_no_kv(self):
        # 10 layers of 70B (~17 GB) cannot fit on a 16 GB card at all.
        assert kv_token_capacity(LLAMA_70B, 16 * GB, 10) == 0

    @given(layers=st.integers(min_value=1, max_value=11))
    def test_kv_plus_weights_never_exceed_vram(self, layers):
        vram = 40 * GB
        tokens = kv_token_capacity(LLAMA_70B, vram, layers)
        used = (
            layers * LLAMA_70B.layer_bytes
            + tokens * LLAMA_70B.kv_bytes_per_token_layer * layers
        )
        assert used <= vram

    @given(
        vram_gb=st.integers(min_value=8, max_value=128),
        frac=st.floats(min_value=0.3, max_value=0.9),
    )
    def test_max_layers_fit_in_partition(self, vram_gb, frac):
        vram = vram_gb * GB
        k = max_layers_on_vram(LLAMA_30B, vram, frac)
        assert k * LLAMA_30B.layer_bytes <= vram * frac
        assert (k + 1) * LLAMA_30B.layer_bytes > vram * frac
