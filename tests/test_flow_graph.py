"""Tests for the cluster graph abstraction (paper §4.3)."""

import pytest

from repro.cluster import COORDINATOR, Profiler, toy_cluster_fig2
from repro.core.errors import ClusterError, PlacementError
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph, connection_is_valid, placement_max_flow


@pytest.fixture()
def placement8():
    # n-chain placement over the tiny 8-layer model on the small cluster.
    return ModelPlacement.from_intervals(
        8, {"a100-0": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8), "t4-1": (0, 4)}
    )


class TestConnectionValidity:
    def test_coordinator_to_first_layer_holder(self, placement8):
        assert connection_is_valid(placement8, COORDINATOR, "a100-0")
        assert not connection_is_valid(placement8, COORDINATOR, "l4-0")

    def test_last_layer_holder_to_coordinator(self, placement8):
        assert connection_is_valid(placement8, "l4-0", COORDINATOR)
        assert not connection_is_valid(placement8, "a100-0", COORDINATOR)

    def test_exact_boundary_connection(self, placement8):
        assert connection_is_valid(placement8, "a100-0", "l4-0")
        assert not connection_is_valid(placement8, "l4-0", "a100-0")

    def test_partial_inference_overlap(self):
        placement = ModelPlacement.from_intervals(
            8, {"n0": (0, 5), "n1": (3, 8)}
        )
        # e_0 = 5 falls inside [3, 8): valid only with partial inference.
        assert connection_is_valid(placement, "n0", "n1", partial_inference=True)
        assert not connection_is_valid(placement, "n0", "n1", partial_inference=False)

    def test_no_backward_connections(self):
        placement = ModelPlacement.from_intervals(
            8, {"n0": (0, 5), "n1": (3, 8)}
        )
        assert not connection_is_valid(placement, "n1", "n0", partial_inference=True)

    def test_equal_intervals_invalid(self):
        placement = ModelPlacement.from_intervals(8, {"n0": (0, 8), "n1": (0, 8)})
        # e_0 = 8 is not < e_1 = 8: data-parallel replicas don't chain.
        assert not connection_is_valid(placement, "n0", "n1")

    def test_unplaced_node_invalid(self, placement8):
        assert not connection_is_valid(placement8, "ghost", "l4-0")
        assert not connection_is_valid(placement8, COORDINATOR, "ghost")


class TestFlowGraph:
    def test_solution_structure(self, small_cluster, tiny_model, placement8):
        graph = FlowGraph(small_cluster, tiny_model, placement8)
        solution = graph.solve()
        assert solution.max_flow > 0
        # Source flow equals sink flow equals max flow.
        out = sum(
            f for (u, _), f in solution.connection_flows.items()
            if u == COORDINATOR
        )
        into = sum(
            f for (_, v), f in solution.connection_flows.items()
            if v == COORDINATOR
        )
        assert out == pytest.approx(solution.max_flow)
        assert into == pytest.approx(solution.max_flow)

    def test_node_flow_within_capacity(self, small_cluster, tiny_model, placement8):
        solution = FlowGraph(small_cluster, tiny_model, placement8).solve()
        for node_id, flow in solution.node_flows.items():
            assert flow <= solution.node_capacities[node_id] + 1e-6
            assert 0.0 <= solution.node_utilization(node_id) <= 1.0 + 1e-9

    def test_outgoing_flows_filter(self, small_cluster, tiny_model, placement8):
        solution = FlowGraph(small_cluster, tiny_model, placement8).solve()
        for dst, flow in solution.outgoing_flows(COORDINATOR).items():
            assert flow > 0
            assert dst in ("a100-0", "t4-1")

    def test_missing_first_layer_raises(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(8, {"a100-0": (1, 8)})
        with pytest.raises(PlacementError, match="first layer"):
            FlowGraph(small_cluster, tiny_model, placement)

    def test_missing_last_layer_raises(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(8, {"a100-0": (0, 7)})
        with pytest.raises(PlacementError, match="last layer"):
            FlowGraph(small_cluster, tiny_model, placement)

    def test_single_node_placement(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(8, {"a100-0": (0, 8)})
        solution = FlowGraph(small_cluster, tiny_model, placement).solve()
        assert solution.max_flow > 0
        assert set(solution.connection_flows) >= {
            (COORDINATOR, "a100-0"),
            ("a100-0", COORDINATOR),
        }

    def test_partial_inference_flag_changes_edges(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 5), "l4-0": (3, 8)}
        )
        with_partial = FlowGraph(
            small_cluster, tiny_model, placement, partial_inference=True
        )
        assert ("a100-0", "l4-0") in with_partial.valid_connections()
        with pytest.raises(PlacementError):
            # Without partial inference there is no path source -> sink, but
            # graph construction itself succeeds; max flow is zero.
            without = FlowGraph(
                small_cluster, tiny_model, placement, partial_inference=False
            )
            assert ("a100-0", "l4-0") not in without.valid_connections()
            if without.solve().max_flow == 0:
                raise PlacementError("no path")

    def test_replication_increases_flow(self, small_cluster, tiny_model):
        solo = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "l4-0": (4, 8)}
        )
        replicated = ModelPlacement.from_intervals(
            8,
            {"a100-0": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8), "t4-1": (0, 4)},
        )
        assert placement_max_flow(
            small_cluster, tiny_model, replicated
        ) >= placement_max_flow(small_cluster, tiny_model, solo)

    def test_network_bound_placement(self, two_region_cluster, tiny_model):
        # The slow 100 Mb/s inter-region link bounds any A100 -> T4 handoff:
        # its activation capacity is tiny compared to node compute.
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-0": (4, 8), "t4-1": (4, 8)}
        )
        profiler = Profiler()
        graph = FlowGraph(two_region_cluster, tiny_model, placement, profiler)
        solution = graph.solve()
        link_capacity = sum(
            cap
            for (u, v), cap in solution.connection_capacities.items()
            if u == "a100-0" and v.startswith("t4")
        )
        assert solution.max_flow <= link_capacity + 1e-6

    def test_fig2_toy_cluster_flow(self, tiny_model):
        cluster = toy_cluster_fig2()
        placement = ModelPlacement.from_intervals(
            3 if tiny_model.num_layers < 3 else 8,
            {"a100": (0, 6), "t4-1": (0, 6), "t4-2": (6, 8)},
        )
        solution = FlowGraph(cluster, tiny_model, placement).solve()
        # Only a100 has a coordinator ingress in Fig. 2's directed topology.
        entries = [
            u for (u, v), f in solution.connection_flows.items()
            if u == COORDINATOR and f > 0
        ]
        assert entries == [COORDINATOR] * len(entries)
        assert solution.max_flow > 0


class TestReevaluate:
    """The incremental fast path must be indistinguishable from rebuilding."""

    CANDIDATES = [
        {"a100-0": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8), "t4-1": (0, 4)},
        {"a100-0": (0, 8), "l4-0": (4, 8), "t4-0": (4, 8), "t4-1": (0, 4)},
        {"a100-0": (0, 8)},
        {"a100-0": (0, 5), "l4-0": (3, 8), "t4-0": (4, 8), "t4-1": (0, 4)},
        {"a100-0": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8), "t4-1": (0, 4)},
    ]

    def test_matches_fresh_build_over_a_candidate_stream(
        self, small_cluster, tiny_model
    ):
        placements = [
            ModelPlacement.from_intervals(8, intervals)
            for intervals in self.CANDIDATES
        ]
        profiler = Profiler()
        evaluator = FlowGraph(small_cluster, tiny_model, placements[0], profiler)
        for placement in placements:
            incremental = evaluator.reevaluate(placement)
            fresh = FlowGraph(small_cluster, tiny_model, placement, profiler).solve()
            assert incremental.max_flow == pytest.approx(fresh.max_flow)
            assert incremental.node_capacities == pytest.approx(fresh.node_capacities)
            assert incremental.connection_capacities == pytest.approx(
                fresh.connection_capacities
            )
            assert incremental.node_flows == pytest.approx(fresh.node_flows)
            assert set(incremental.connection_flows) == set(fresh.connection_flows)
            for key, flow in fresh.connection_flows.items():
                assert incremental.connection_flows[key] == pytest.approx(flow)

    def test_valid_connections_track_the_placement(self, small_cluster, tiny_model):
        chain = ModelPlacement.from_intervals(8, {"a100-0": (0, 4), "l4-0": (4, 8)})
        solo = ModelPlacement.from_intervals(8, {"a100-0": (0, 8)})
        evaluator = FlowGraph(small_cluster, tiny_model, chain)
        assert ("a100-0", "l4-0") in evaluator.valid_connections()
        evaluator.reevaluate(solo)
        assert ("a100-0", "l4-0") not in evaluator.valid_connections()
        assert (COORDINATOR, "a100-0") in evaluator.valid_connections()

    def test_unchanged_placement_reuses_cached_solution(
        self, small_cluster, tiny_model
    ):
        placement = ModelPlacement.from_intervals(8, {"a100-0": (0, 8)})
        identical = ModelPlacement.from_intervals(8, {"a100-0": (0, 8)})
        evaluator = FlowGraph(small_cluster, tiny_model, placement)
        first = evaluator.solve()
        assert evaluator.reevaluate(identical) is first

    def test_invalid_placement_raises_and_evaluator_recovers(
        self, small_cluster, tiny_model
    ):
        good = ModelPlacement.from_intervals(8, {"a100-0": (0, 8)})
        no_first = ModelPlacement.from_intervals(8, {"a100-0": (1, 8)})
        evaluator = FlowGraph(small_cluster, tiny_model, good)
        expected = evaluator.solve().max_flow
        with pytest.raises(PlacementError, match="first layer"):
            evaluator.reevaluate(no_first)
        assert evaluator.reevaluate(good).max_flow == pytest.approx(expected)

    def test_unknown_node_rejected(self, small_cluster, tiny_model):
        good = ModelPlacement.from_intervals(8, {"a100-0": (0, 8)})
        ghost = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 8), "ghost": (0, 8)}
        )
        evaluator = FlowGraph(small_cluster, tiny_model, good)
        with pytest.raises(ClusterError, match="unknown node"):
            evaluator.reevaluate(ghost)

    def test_partial_inference_flag_respected_incrementally(
        self, small_cluster, tiny_model
    ):
        overlap = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 5), "l4-0": (3, 8)}
        )
        strict = FlowGraph(
            small_cluster, tiny_model,
            ModelPlacement.from_intervals(8, {"a100-0": (0, 8)}),
            partial_inference=False,
        )
        strict.reevaluate(overlap)
        assert ("a100-0", "l4-0") not in strict.valid_connections()

    def test_num_layers_change_revalidates_all_links(self, small_cluster, tiny_model):
        # Sink-side validity depends on num_layers, so an unchanged interval
        # can still gain or lose its link to the coordinator.
        short = ModelPlacement.from_intervals(8, {"a100-0": (0, 8)})
        longer = ModelPlacement.from_intervals(
            16, {"a100-0": (0, 8), "l4-0": (8, 16)}
        )
        evaluator = FlowGraph(small_cluster, tiny_model, short)
        evaluator.solve()
        incremental = evaluator.reevaluate(longer)
        fresh = FlowGraph(small_cluster, tiny_model, longer).solve()
        assert incremental.max_flow == pytest.approx(fresh.max_flow)
        assert set(incremental.connection_flows) == set(fresh.connection_flows)
        # a100-0 no longer holds the last layer: no edge to the sink.
        assert ("a100-0", COORDINATOR) not in incremental.connection_flows
        # And back again.
        back = evaluator.reevaluate(short)
        assert ("a100-0", COORDINATOR) in back.connection_flows
        assert back.max_flow == pytest.approx(
            FlowGraph(small_cluster, tiny_model, short).solve().max_flow
        )
