"""Tests for the perf-tracking harness (``repro.bench.perftrack``)."""

import json

import pytest

from repro.bench.perftrack import (
    PerfTracker,
    bench_cluster,
    candidate_placements,
    run_flow_bench,
    run_milp_bench,
)
from repro.models.specs import LLAMA_70B


class TestPerfTracker:
    def test_time_records_laps(self):
        tracker = PerfTracker(label="unit")
        timing = tracker.time("noop", lambda: None, repeats=3, tag="x")
        assert timing.repeats == 3
        assert timing.best_s <= timing.mean_s <= timing.total_s
        assert timing.meta == {"tag": "x"}
        assert tracker.timings == [timing]

    def test_time_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            PerfTracker().time("noop", lambda: None, repeats=0)

    def test_speedup_and_write_roundtrip(self, tmp_path):
        tracker = PerfTracker(label="unit")
        slow = tracker.time("slow", lambda: sum(range(20_000)), repeats=2)
        fast = tracker.time("fast", lambda: None, repeats=2)
        ratio = tracker.speedup("ratio", slow, fast)
        assert ratio > 1.0
        path = tracker.write(tmp_path / "BENCH_unit.json")
        doc = json.loads(path.read_text())
        assert doc["label"] == "unit"
        assert doc["derived"]["ratio"] == pytest.approx(ratio)
        assert [t["name"] for t in doc["timings"]] == ["slow", "fast"]


class TestCandidateStream:
    def test_candidates_are_valid_and_distinct(self):
        cluster = bench_cluster(8)
        placements = candidate_placements(cluster, LLAMA_70B, 6, seed=3)
        assert len(placements) == 6
        for placement in placements:
            placement.validate()  # full layer coverage, bounds respected
        signatures = {
            tuple(sorted(
                (nid, s.start, s.end) for nid, s in p.assignments.items()
            ))
            for p in placements
        }
        assert len(signatures) > 1  # the stream actually moves nodes


@pytest.mark.perf
def test_milp_bench_smoke_writes_artifact(tmp_path):
    """Tier-1-safe smoke run of the MILP perf harness: tiny sizes, but the
    cross-checked scenarios and ``BENCH_milp.json`` generation path are
    exercised end to end."""
    path = tmp_path / "BENCH_milp.json"
    doc = run_milp_bench(smoke=True, path=path)
    assert path.exists()
    on_disk = json.loads(path.read_text())
    assert on_disk["derived"] == doc["derived"]
    # The incremental compile and vectorized feasibility check must not be
    # slower than the loops they replaced even at smoke sizes.
    assert doc["derived"]["milp_compile_speedup"] > 1.0
    assert doc["derived"]["milp_feascheck_speedup"] > 0.5
    assert doc["derived"]["bnb_node_factor"] > 0.0
    names = [t["name"] for t in doc["timings"]]
    assert "milp_compile_incremental" in names
    assert "bnb_plain" in names and "bnb_smart" in names


@pytest.mark.perf
def test_flow_bench_smoke_writes_artifact(tmp_path):
    """Tier-1-safe smoke run: tiny sizes, but the full harness and the
    ``BENCH_flow.json`` generation path are exercised end to end."""
    path = tmp_path / "BENCH_flow.json"
    doc = run_flow_bench(smoke=True, path=path)
    assert path.exists()
    on_disk = json.loads(path.read_text())
    assert on_disk["derived"] == doc["derived"]
    assert doc["derived"]["placement_eval_speedup"] > 1.0
    assert doc["derived"]["kernel_reuse_speedup"] > 0.0
    names = [t["name"] for t in doc["timings"]]
    assert "eval_rebuild_per_candidate" in names
    assert "eval_incremental" in names


@pytest.mark.perf
def test_sim_bench_smoke_writes_artifact(tmp_path):
    """Tier-1-safe smoke run of the simulator perf harness.

    Small tiers with a heuristic placement, but the flooded / Poisson /
    churn scenarios, both engines, and the ``BENCH_sim.json`` generation
    path are exercised end to end. The flooded smoke tier must show the
    hop-table engine at >=2x the frozen baseline — far under the >=10x the
    full-size flood records, so CI noise cannot flake it.
    """
    from repro.bench.simbench import run_sim_bench

    path = tmp_path / "BENCH_sim.json"
    doc = run_sim_bench(smoke=True, path=path)
    assert path.exists()
    on_disk = json.loads(path.read_text())
    assert on_disk["derived"] == doc["derived"]
    assert doc["derived"]["sim_flooded_small_speedup"] >= 2.0
    assert doc["derived"]["sim_poisson_small_speedup"] > 1.0
    assert doc["derived"]["sim_churn_small_speedup"] > 1.0
    # The batch engine's headline gate: >=2x the hop-table engine on the
    # diurnal smoke tier, where closed windows dominate and the
    # vectorized steady-state fast-forward is what's being measured.
    # (On flooded-small the hop engine already vectorizes the decode
    # cohorts, so batch is gated there as a non-regression bound only.)
    assert doc["derived"]["sim_diurnal_small_batch_vs_hop"] >= 2.0
    assert doc["derived"]["sim_flooded_small_batch_vs_hop"] >= 0.8
    assert doc["derived"]["sim_diurnal_small_span_days"] > 1.0
    names = [t["name"] for t in doc["timings"]]
    assert "sim_flooded_small_legacy" in names
    assert "sim_flooded_small_hop_table" in names
    assert "sim_flooded_small_batch" in names
    assert "sim_diurnal_small_batch" in names
    # Telemetry proves the coalescing machinery actually engaged.
    hop_rows = [
        t for t in doc["timings"] if t["name"].endswith("_hop_table")
    ]
    assert any(row["meta"].get("grouped_hops", 0) > 0 for row in hop_rows)
    assert any(
        row["meta"].get("fast_forwarded_tokens", 0) > 0 for row in hop_rows
    )
    # ... and that the batch engine's macro-stepping did the diurnal work.
    diurnal_batch = next(
        t for t in doc["timings"] if t["name"] == "sim_diurnal_small_batch"
    )
    tokens = diurnal_batch["meta"]["tokens"]
    assert diurnal_batch["meta"]["vec_fast_forwarded_tokens"] > 0.5 * tokens
