"""Cross-module integration tests: planner -> scheduler -> simulator."""

import pytest

from repro import (
    AzureTraceConfig,
    HelixMilpPlanner,
    Profiler,
    synthesize_azure_trace,
)
from repro.bench.runner import make_planner, make_scheduler, run_offline, run_online
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph
from repro.scheduling import HelixScheduler
from repro.sim import Request, Simulation
from repro.trace import offline_arrivals


class TestFullPipeline:
    def test_helix_end_to_end_on_small_cluster(self, small_cluster, tiny_model):
        profiler = Profiler()
        planner = HelixMilpPlanner(
            small_cluster, tiny_model, profiler, time_limit=15, mip_rel_gap=0.05
        )
        result = planner.plan()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, result.placement, profiler,
            flow=result.flow,
        )
        trace = [Request(f"r{i}", 32, 6) for i in range(40)]
        metrics = Simulation(
            small_cluster, tiny_model, result.placement, scheduler, trace,
            profiler=profiler,
        ).run()
        assert metrics.requests_finished == 40
        assert metrics.kv_overflow_events == 0
        assert metrics.decode_throughput > 0

    @pytest.mark.parametrize("placement_method", ["swarm", "petals", "sp"])
    @pytest.mark.parametrize("scheduler_method", ["helix", "random"])
    def test_method_matrix(
        self, small_cluster, tiny_model, placement_method, scheduler_method
    ):
        planner_result = make_planner(
            placement_method, small_cluster, tiny_model
        ).plan()
        trace = [Request(f"r{i}", 24, 4) for i in range(20)]
        result = run_offline(
            small_cluster, tiny_model, planner_result, scheduler_method, trace,
            max_time=600.0, warmup=0.0, placement_method=placement_method,
        )
        assert result.metrics.requests_finished == 20
        assert result.placement_method == placement_method
        assert result.scheduler_method == scheduler_method

    def test_planned_throughput_bounds_simulated(self, small_cluster, tiny_model):
        """Simulated total token rate never exceeds the max-flow bound."""
        planner_result = make_planner("petals", small_cluster, tiny_model).plan()
        trace = [Request(f"r{i}", 50, 20) for i in range(150)]
        result = run_offline(
            small_cluster, tiny_model, planner_result, "helix", trace,
            max_time=3000.0, warmup=0.0,
        )
        metrics = result.metrics
        total_tokens = sum(r.total_tokens for r in trace)
        # All requests finished: average total-token rate over the run.
        assert metrics.requests_finished == 150
        rate = total_tokens / metrics.duration
        assert rate <= planner_result.max_throughput * 1.05

    def test_kv_capacity_scale_reduces_concurrency(self, small_cluster, tiny_model):
        planner_result = make_planner("petals", small_cluster, tiny_model).plan()
        scaled = Profiler(kv_capacity_scale=0.01)
        node = small_cluster.node("t4-0")
        full = Profiler().kv_capacity(node, tiny_model, 4)
        small = scaled.kv_capacity(node, tiny_model, 4)
        assert small == int(full * 0.01)

    def test_online_less_bursty_than_offline(self, small_cluster, tiny_model):
        planner_result = make_planner("petals", small_cluster, tiny_model).plan()
        trace = synthesize_azure_trace(
            AzureTraceConfig(num_requests=60, seed=3, scale=0.1)
        )
        offline = run_offline(
            small_cluster, tiny_model, planner_result, "helix", trace,
            max_time=4000.0, warmup=0.0,
        )
        online = run_online(
            small_cluster, tiny_model, planner_result, "helix", trace,
            max_time=8000.0, warmup=0.0, utilization=0.5,
        )
        assert online.metrics.prompt_latency.p95 <= max(
            offline.metrics.prompt_latency.p95, 1e-6
        )

    def test_simulation_conserves_tokens(self, small_cluster, tiny_model):
        """Every finished request emitted exactly output_len tokens."""
        planner_result = make_planner("swarm", small_cluster, tiny_model).plan()
        scheduler = make_scheduler(
            "helix", small_cluster, tiny_model, planner_result
        )
        trace = [Request(f"r{i}", 16 + i % 7, 3 + i % 5) for i in range(30)]
        sim = Simulation(
            small_cluster, tiny_model, planner_result.placement, scheduler,
            trace,
        )
        sim.run()
        for request in trace:
            record = sim.record_of(request.request_id)
            assert record.tokens_generated == request.output_len

    def test_partial_inference_pipeline_layers(self, small_cluster, tiny_model):
        """Overlapping placement yields partial stages that still cover."""
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 6), "l4-0": (4, 8), "t4-0": (0, 4), "t4-1": (2, 8)}
        )
        flow = FlowGraph(small_cluster, tiny_model, placement).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement, flow=flow
        )
        for i in range(20):
            pipeline = scheduler.schedule(f"r{i}", 16)
            pipeline.validate(8)
            # Some pipelines must use a partial handoff (stage shorter than
            # the node's full resident interval).
        trace = [Request(f"q{i}", 16, 3) for i in range(15)]
        metrics = Simulation(
            small_cluster, tiny_model, placement,
            HelixScheduler(small_cluster, tiny_model, placement, flow=flow),
            trace,
        ).run()
        assert metrics.requests_finished == 15
