"""Tests for placement planners: baselines and the Helix MILP planner."""

import pytest

from repro.cluster import Cluster, L4, T4, single_cluster_24, small_cluster_fig12
from repro.core.errors import PlacementError
from repro.core.units import GBIT
from repro.models.specs import LLAMA_30B, LLAMA_70B
from repro.placement import (
    HelixMilpPlanner,
    PetalsPlanner,
    SeparatePipelinesPlanner,
    SwarmPlanner,
    prune_cluster,
)
from repro.placement.swarm import even_partition


class TestEvenPartition:
    def test_exact_split(self):
        assert even_partition(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_covers_everything(self):
        stages = even_partition(10, 3)
        assert stages[0][0] == 0 and stages[-1][1] == 10
        assert all(lo < hi for lo, hi in stages)
        assert all(stages[i][1] == stages[i + 1][0] for i in range(2))

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            even_partition(4, 5)
        with pytest.raises(ValueError):
            even_partition(4, 0)


class TestPruning:
    def test_degree_bound_enforced(self):
        cluster = single_cluster_24()
        pruned = prune_cluster(cluster, max_degree=6)
        for node_id in pruned.node_ids:
            inter_node = [
                l for l in pruned.links_from(node_id) if l.dst != "coordinator"
            ]
            assert len(inter_node) <= 6

    def test_coordinator_links_survive(self):
        cluster = single_cluster_24()
        pruned = prune_cluster(cluster, max_degree=2)
        assert len(pruned.links_from("coordinator")) == len(
            cluster.links_from("coordinator")
        )
        assert len(pruned.links_to("coordinator")) == len(
            cluster.links_to("coordinator")
        )

    def test_keeps_fastest_links(self):
        cluster = Cluster(name="mixed")
        cluster.add_node("a", T4)
        cluster.add_node("b", T4)
        cluster.add_node("c", T4)
        cluster.connect("a", "b", 1 * GBIT)
        cluster.connect("a", "c", 10 * GBIT)
        cluster.connect("b", "c", 10 * GBIT)
        cluster.connect("coordinator", "a", 10 * GBIT)
        cluster.connect("coordinator", "b", 10 * GBIT)
        pruned = prune_cluster(cluster, max_degree=1)
        assert pruned.has_link("a", "c")
        assert not pruned.has_link("a", "b")

    def test_original_not_modified(self):
        cluster = single_cluster_24()
        before = len(cluster.links)
        prune_cluster(cluster, max_degree=3)
        assert len(cluster.links) == before

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            prune_cluster(single_cluster_24(), max_degree=0)


class TestSwarmPlanner:
    def test_even_stages_on_70b(self):
        result = SwarmPlanner(single_cluster_24(), LLAMA_70B).plan()
        # Weakest GPU (T4) holds 4 layers -> 20 stages of 4 layers each,
        # matching the paper's Fig. 9b Swarm placement (all nodes hold 4).
        sizes = {s.num_layers for s in result.placement.assignments.values()}
        assert sizes == {4}
        result.placement.validate()
        assert result.max_throughput > 0

    def test_every_node_used(self):
        result = SwarmPlanner(single_cluster_24(), LLAMA_70B).plan()
        assert len(result.placement.used_nodes) == 24

    def test_capacity_balanced_assignment(self, small_cluster, tiny_model):
        result = SwarmPlanner(small_cluster, tiny_model).plan()
        result.placement.validate()
        # All 8 layers covered by 4 nodes.
        assert all(c >= 1 for c in result.placement.coverage())


class TestPetalsPlanner:
    def test_all_nodes_take_max_span(self):
        planner = PetalsPlanner(single_cluster_24(), LLAMA_70B)
        result = planner.plan()
        for node_id, stage in result.placement.assignments.items():
            assert stage.num_layers == planner.max_layers(node_id)

    def test_coverage_complete(self):
        result = PetalsPlanner(single_cluster_24(), LLAMA_70B).plan()
        assert min(result.placement.coverage()) >= 1

    def test_beats_swarm_on_single_cluster(self):
        # The paper's Fig. 9a ordering: Petals placement > Swarm placement.
        cluster = single_cluster_24()
        petals = PetalsPlanner(cluster, LLAMA_70B).plan()
        swarm = SwarmPlanner(cluster, LLAMA_70B).plan()
        assert petals.max_throughput > swarm.max_throughput


class TestSeparatePipelines:
    def test_llama30b_forms_three_pipeline_groups(self):
        result = SeparatePipelinesPlanner(single_cluster_24(), LLAMA_30B).plan()
        labels = set()
        for pipeline in result.pipelines:
            labels.add(pipeline[0].split("-")[0])
            # Pipelines are homogeneous for 30B.
            assert len({nid.split("-")[0] for nid in pipeline}) == 1
        assert labels == {"a100", "l4", "t4"}

    def test_llama70b_relaxes_weight_fraction(self):
        result = SeparatePipelinesPlanner(single_cluster_24(), LLAMA_70B).plan()
        # At half VRAM no type can serve 70B; SP packs more layers per node.
        result.placement.validate()
        assert result.pipelines  # still forms pipelines
        max_held = max(
            s.num_layers for s in result.placement.assignments.values()
        )
        assert max_held > 11  # beyond the half-VRAM A100 bound

    def test_sp_plus_uses_leftovers(self):
        cluster = single_cluster_24()
        sp = SeparatePipelinesPlanner(cluster, LLAMA_30B).plan()
        sp_plus = SeparatePipelinesPlanner(
            cluster, LLAMA_30B, include_mixed_pipeline=True
        ).plan()
        assert len(sp_plus.pipelines) >= len(sp.pipelines)
        assert sp_plus.max_throughput >= sp.max_throughput

    def test_pipelines_are_disjoint(self):
        result = SeparatePipelinesPlanner(single_cluster_24(), LLAMA_30B).plan()
        seen = set()
        for pipeline in result.pipelines:
            for node_id in pipeline:
                assert node_id not in seen
                seen.add(node_id)

    def test_raises_when_impossible(self, tiny_model):
        cluster = Cluster(name="single-t4")
        cluster.add_node("t4-0", T4)
        cluster.connect("coordinator", "t4-0", 10 * GBIT)
        # One T4 can hold the whole tiny model: should succeed, not raise.
        result = SeparatePipelinesPlanner(cluster, tiny_model).plan()
        assert result.pipelines == [["t4-0"]]


class TestHelixPlannerSmall:
    def test_formulation_size_is_linear(self, small_cluster, tiny_model):
        planner = HelixMilpPlanner(small_cluster, tiny_model, hints=None)
        formulation = planner.build_formulation()
        nodes = len(small_cluster)
        links = len(small_cluster.links)
        # Per Table 5: O(|C|) node vars + O(|E|) connection vars.
        assert formulation.problem.num_variables <= 2 * nodes + 4 * links + nodes * 8
        assert formulation.problem.num_constraints <= 3 * nodes + 4 * links + 2

    def test_plan_beats_or_matches_heuristics(self, small_cluster, tiny_model):
        helix = HelixMilpPlanner(
            small_cluster, tiny_model, time_limit=20, mip_rel_gap=0.02
        ).plan()
        swarm = SwarmPlanner(small_cluster, tiny_model).plan()
        petals = PetalsPlanner(small_cluster, tiny_model).plan()
        best_heuristic = max(swarm.max_throughput, petals.max_throughput)
        assert helix.max_throughput >= best_heuristic - 1e-6

    def test_respects_upper_bound(self, small_cluster, tiny_model):
        planner = HelixMilpPlanner(
            small_cluster, tiny_model, time_limit=20, mip_rel_gap=0.02
        )
        result = planner.plan()
        assert result.max_throughput <= planner.compute_upper_bound() + 1e-6

    def test_orchestrated_placement_valid(self, small_cluster, tiny_model):
        result = HelixMilpPlanner(
            small_cluster, tiny_model, time_limit=20, mip_rel_gap=0.02
        ).plan()
        bounds = {
            nid: HelixMilpPlanner(
                small_cluster, tiny_model
            ).max_layers(nid)
            for nid in small_cluster.node_ids
        }
        result.placement.validate(max_layers_per_node=bounds)

    def test_bnb_backend_with_warm_start(self, small_cluster, tiny_model):
        planner = HelixMilpPlanner(
            small_cluster,
            tiny_model,
            backend="bnb",
            time_limit=15,
            mip_rel_gap=0.05,
        )
        result = planner.plan()
        assert result.max_throughput > 0
        assert planner.last_trajectory  # trajectory recorded

    def test_assignment_from_placement_is_feasible(self, small_cluster, tiny_model):
        planner = HelixMilpPlanner(small_cluster, tiny_model, hints=None)
        formulation = planner.build_formulation()
        hint = SwarmPlanner(small_cluster, tiny_model).plan().placement
        values = planner.assignment_from_placement(
            formulation, hint, small_cluster
        )
        violated = formulation.problem.check_feasible(values, tol=1e-4)
        assert violated == []

    def test_partial_inference_never_hurts(self, small_cluster, tiny_model):
        with_partial = HelixMilpPlanner(
            small_cluster, tiny_model, time_limit=15, mip_rel_gap=0.02,
            partial_inference=True,
        ).plan()
        without = HelixMilpPlanner(
            small_cluster, tiny_model, time_limit=15, mip_rel_gap=0.02,
            partial_inference=False,
        ).plan()
        assert with_partial.max_throughput >= without.max_throughput - 1e-6

    def test_unknown_backend_rejected(self, small_cluster, tiny_model):
        with pytest.raises(ValueError, match="backend"):
            HelixMilpPlanner(small_cluster, tiny_model, backend="gurobi")


class TestPlacementEvaluator:
    def test_explicit_cluster_is_not_silently_replaced(
        self, small_cluster, tiny_model
    ):
        # Cluster defines __len__, so an empty cluster is falsy; the
        # evaluator must still honor it instead of falling back to the
        # planner's full cluster and overvaluing the candidate.
        from repro.core.errors import ClusterError
        from repro.placement.petals import PetalsPlanner
        from repro.core.placement_types import ModelPlacement

        planner = PetalsPlanner(small_cluster, tiny_model)
        placement = ModelPlacement.from_intervals(8, {"a100-0": (0, 8)})
        empty = Cluster(name="empty")
        with pytest.raises(ClusterError):
            planner.evaluate_placement(placement, empty)

    def test_placement_throughput_matches_fresh_flow_graph(
        self, small_cluster, tiny_model
    ):
        from repro.flow.graph import placement_max_flow
        from repro.core.placement_types import ModelPlacement
        from repro.placement.petals import PetalsPlanner

        planner = PetalsPlanner(small_cluster, tiny_model)
        candidates = [
            {"a100-0": (0, 8)},
            {"a100-0": (0, 4), "l4-0": (4, 8)},
            {"a100-0": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8), "t4-1": (0, 4)},
            {"a100-0": (0, 8)},
        ]
        for intervals in candidates:
            placement = ModelPlacement.from_intervals(8, intervals)
            assert planner.placement_throughput(placement) == pytest.approx(
                placement_max_flow(small_cluster, tiny_model, placement)
            )

    def test_invalid_placement_scores_zero(self, small_cluster, tiny_model):
        from repro.core.placement_types import ModelPlacement
        from repro.placement.petals import PetalsPlanner

        planner = PetalsPlanner(small_cluster, tiny_model)
        no_first = ModelPlacement.from_intervals(8, {"a100-0": (1, 8)})
        assert planner.placement_throughput(no_first) == 0.0
