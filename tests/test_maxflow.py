"""Tests for the flat-array Dinic max-flow kernel, incl. networkx cross-check."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.flow.maxflow import FlowNetwork


def build_pair(edges):
    """Build our network and a networkx digraph from (u, v, cap) triples."""
    net = FlowNetwork()
    graph = nx.DiGraph()
    for u, v, cap in edges:
        net.add_edge(u, v, cap)
        if graph.has_edge(u, v):
            graph[u][v]["capacity"] += cap
        else:
            graph.add_edge(u, v, capacity=cap)
    return net, graph


class TestBasics:
    def test_single_edge(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 7.5)
        assert net.max_flow("s", "t").value == pytest.approx(7.5)

    def test_series_bottleneck(self):
        net, _ = build_pair([("s", "a", 10), ("a", "t", 3)])
        assert net.max_flow("s", "t").value == pytest.approx(3)

    def test_parallel_paths_sum(self):
        net, _ = build_pair(
            [("s", "a", 4), ("a", "t", 4), ("s", "b", 6), ("b", "t", 6)]
        )
        assert net.max_flow("s", "t").value == pytest.approx(10)

    def test_parallel_edges_kept_distinct(self):
        net = FlowNetwork()
        e1 = net.add_edge("s", "t", 2.0)
        e2 = net.add_edge("s", "t", 3.0)
        result = net.max_flow("s", "t")
        assert result.value == pytest.approx(5.0)
        assert result.edge_flows[e1] == pytest.approx(2.0)
        assert result.edge_flows[e2] == pytest.approx(3.0)

    def test_disconnected_sink(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 5)
        net.add_node("t")
        assert net.max_flow("s", "t").value == 0.0

    def test_zero_capacity_edge(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 0.0)
        assert net.max_flow("s", "t").value == 0.0

    def test_classic_diamond_with_cross_edge(self):
        net, graph = build_pair(
            [
                ("s", "a", 10), ("s", "b", 10), ("a", "b", 2),
                ("a", "t", 4), ("b", "t", 9),
            ]
        )
        assert net.max_flow("s", "t").value == pytest.approx(
            nx.maximum_flow_value(graph, "s", "t")
        )

    def test_rejects_negative_capacity(self):
        net = FlowNetwork()
        with pytest.raises(ValueError, match="negative"):
            net.add_edge("a", "b", -1.0)

    def test_rejects_self_loop(self):
        net = FlowNetwork()
        with pytest.raises(ValueError, match="self-loop"):
            net.add_edge("a", "a", 1.0)

    def test_rejects_missing_endpoints(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 1.0)
        with pytest.raises(ValueError, match="not present"):
            net.max_flow("s", "zzz")

    def test_rejects_equal_source_sink(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 1.0)
        with pytest.raises(ValueError, match="differ"):
            net.max_flow("s", "s")

    def test_edge_endpoints_roundtrip(self):
        net = FlowNetwork()
        eid = net.add_edge("x", "y", 2.5)
        assert net.edge_endpoints(eid) == ("x", "y", 2.5)


class TestFlowProperties:
    def test_min_cut_separates_source_from_sink(self):
        net, _ = build_pair([("s", "a", 5), ("a", "t", 1)])
        result = net.max_flow("s", "t")
        assert "s" in result.min_cut_source_side
        assert "t" not in result.min_cut_source_side

    def test_min_cut_capacity_equals_flow(self):
        edges = [
            ("s", "a", 3), ("s", "b", 2), ("a", "c", 3), ("b", "c", 3),
            ("c", "t", 4),
        ]
        net, _ = build_pair(edges)
        result = net.max_flow("s", "t")
        cut = result.min_cut_source_side
        cut_capacity = sum(
            cap for u, v, cap in edges if u in cut and v not in cut
        )
        assert result.value == pytest.approx(cut_capacity)

    def test_conservation_at_internal_nodes(self):
        edges = [
            ("s", "a", 4), ("s", "b", 3), ("a", "b", 2), ("a", "t", 2),
            ("b", "t", 5),
        ]
        net, _ = build_pair(edges)
        result = net.max_flow("s", "t")
        flows = {}
        for eid, flow in result.edge_flows.items():
            u, v, _ = net.edge_endpoints(eid)
            flows[(u, v)] = flows.get((u, v), 0.0) + flow
        for node in ("a", "b"):
            inflow = sum(f for (u, v), f in flows.items() if v == node)
            outflow = sum(f for (u, v), f in flows.items() if u == node)
            assert inflow == pytest.approx(outflow)

    def test_edge_flows_within_capacity(self):
        edges = [("s", "a", 4), ("a", "t", 2.5), ("s", "t", 1)]
        net, _ = build_pair(edges)
        result = net.max_flow("s", "t")
        for eid, flow in result.edge_flows.items():
            _, _, cap = net.edge_endpoints(eid)
            assert -1e-9 <= flow <= cap + 1e-9


class TestIterativeDepth:
    def test_deep_chain_solves_without_recursion(self):
        """A 5,000-node chain blew the recursive DFS's stack; the iterative
        kernel must solve it well inside the default recursion limit."""
        net = FlowNetwork()
        n = 5000
        for i in range(n):
            net.add_edge(f"v{i}", f"v{i + 1}", 10.0 + (i % 7))
        result = net.max_flow("v0", f"v{n}")
        assert result.value == pytest.approx(10.0)  # min capacity on the chain
        assert sum(1 for f in result.edge_flows.values() if f > 0) == n

    def test_deep_chain_with_branches(self):
        net = FlowNetwork()
        n = 2000
        for i in range(n):
            net.add_edge(f"v{i}", f"v{i + 1}", 5.0)
            net.add_edge("s", f"v{i}", 0.001)
        net.add_edge("s", "v0", 5.0)
        result = net.max_flow("s", f"v{n}")
        assert result.value == pytest.approx(5.0)


class TestReuse:
    def test_set_capacity_then_resolve_matches_fresh_build(self):
        edges = [
            ("s", "a", 3.0), ("s", "b", 2.0), ("a", "c", 3.0),
            ("b", "c", 3.0), ("a", "b", 1.0), ("c", "t", 4.0),
        ]
        net, _ = build_pair(edges)
        net.max_flow("s", "t")
        updates = {0: 6.0, 5: 2.5, 3: 0.0}
        for eid, cap in updates.items():
            net.set_capacity(eid, cap)
        resolved = net.max_flow("s", "t")

        fresh = FlowNetwork()
        for eid, (u, v, cap) in enumerate(edges):
            fresh.add_edge(u, v, updates.get(eid, cap))
        expected = fresh.max_flow("s", "t")
        assert resolved.value == pytest.approx(expected.value)
        assert resolved.edge_flows == pytest.approx(expected.edge_flows)
        assert resolved.min_cut_source_side == expected.min_cut_source_side

    def test_repeated_solves_are_deterministic(self):
        net, _ = build_pair(
            [("s", "a", 4), ("s", "b", 3), ("a", "b", 2), ("a", "t", 2),
             ("b", "t", 5)]
        )
        first = net.max_flow("s", "t")
        second = net.max_flow("s", "t")
        assert first.value == second.value
        assert first.edge_flows == second.edge_flows

    def test_set_capacity_to_zero_disables_edge(self):
        net = FlowNetwork()
        e1 = net.add_edge("s", "t", 2.0)
        e2 = net.add_edge("s", "t", 3.0)
        net.set_capacity(e1, 0.0)
        result = net.max_flow("s", "t")
        assert result.value == pytest.approx(3.0)
        assert result.edge_flows[e1] == 0.0
        assert result.edge_flows[e2] == pytest.approx(3.0)

    def test_set_capacity_can_grow_flow(self):
        net = FlowNetwork()
        eid = net.add_edge("s", "a", 1.0)
        net.add_edge("a", "t", 10.0)
        assert net.max_flow("s", "t").value == pytest.approx(1.0)
        net.set_capacity(eid, 7.0)
        assert net.max_flow("s", "t").value == pytest.approx(7.0)

    def test_lowering_the_largest_capacity_rescales_epsilon(self):
        # Shrinking the max-capacity edge marks the epsilon scale dirty;
        # the next solve must recompute it and still be exact.
        net = FlowNetwork()
        big = net.add_edge("s", "a", 1e9)
        net.add_edge("a", "t", 2.0)
        assert net.max_flow("s", "t").value == pytest.approx(2.0)
        net.set_capacity(big, 1.5)
        assert net.max_flow("s", "t").value == pytest.approx(1.5)

    def test_reset_flow_clears_previous_solution(self):
        net, _ = build_pair([("s", "a", 4), ("a", "t", 4)])
        net.max_flow("s", "t")
        net.reset_flow()
        assert net.max_flow("s", "t").value == pytest.approx(4.0)

    def test_edge_endpoints_reflects_updated_capacity(self):
        net = FlowNetwork()
        eid = net.add_edge("x", "y", 2.5)
        net.set_capacity(eid, 9.0)
        assert net.edge_endpoints(eid) == ("x", "y", 9.0)

    def test_set_capacity_rejects_bad_arguments(self):
        net = FlowNetwork()
        eid = net.add_edge("s", "t", 1.0)
        with pytest.raises(ValueError, match="negative"):
            net.set_capacity(eid, -1.0)
        with pytest.raises(ValueError, match="unknown edge"):
            net.set_capacity(eid + 1, 1.0)

    def test_randomized_retune_cycles_match_networkx(self):
        rng = random.Random(7)
        net = FlowNetwork()
        names = [f"v{i}" for i in range(8)]
        edges = []
        for _ in range(24):
            u, v = rng.sample(names, 2)
            cap = rng.uniform(0.5, 20.0)
            edges.append([u, v, cap])
            net.add_edge(u, v, cap)
        net.add_node("v0")
        net.add_node("v7")
        for _ in range(10):
            for _ in range(3):
                eid = rng.randrange(len(edges))
                cap = rng.choice([0.0, rng.uniform(0.5, 20.0)])
                edges[eid][2] = cap
                net.set_capacity(eid, cap)
            graph = nx.DiGraph()
            graph.add_node("v0")
            graph.add_node("v7")
            for u, v, cap in edges:
                if graph.has_edge(u, v):
                    graph[u][v]["capacity"] += cap
                else:
                    graph.add_edge(u, v, capacity=cap)
            ours = net.max_flow("v0", "v7").value
            theirs = nx.maximum_flow_value(graph, "v0", "v7")
            assert ours == pytest.approx(theirs, rel=1e-6, abs=1e-6)


@st.composite
def random_graph(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    names = [f"v{i}" for i in range(n)]
    num_edges = draw(st.integers(min_value=2, max_value=4 * n))
    edges = []
    for _ in range(num_edges):
        u = draw(st.sampled_from(names))
        v = draw(st.sampled_from(names))
        if u == v:
            continue
        cap = draw(st.floats(min_value=0.1, max_value=50, allow_nan=False))
        edges.append((u, v, cap))
    return names, edges


class TestAgainstNetworkx:
    @settings(max_examples=60, deadline=None)
    @given(data=random_graph())
    def test_value_matches_networkx(self, data):
        names, edges = data
        if not edges:
            return
        net, graph = build_pair(edges)
        s, t = names[0], names[-1]
        net.add_node(s)
        net.add_node(t)
        graph.add_node(s)
        graph.add_node(t)
        ours = net.max_flow(s, t).value
        theirs = nx.maximum_flow_value(graph, s, t)
        assert ours == pytest.approx(theirs, rel=1e-6, abs=1e-6)
