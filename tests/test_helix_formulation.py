"""White-box tests of the Helix MILP formulation (Tables 5-6)."""

import pytest

from repro.cluster import Cluster, L4, T4, Profiler
from repro.core.placement_types import ModelPlacement
from repro.core.units import GBIT
from repro.milp.scipy_backend import solve_with_highs
from repro.models.specs import ModelSpec
from repro.placement import HelixMilpPlanner, PetalsPlanner


@pytest.fixture()
def tiny2(tiny_model):
    """Two-node cluster small enough to reason about by hand."""
    cluster = Cluster(name="tiny2")
    cluster.add_node("l4", L4)
    cluster.add_node("t4", T4)
    cluster.connect("l4", "t4", 10 * GBIT, 0.001)
    cluster.connect("coordinator", "l4", 10 * GBIT, 0.001)
    cluster.connect("coordinator", "t4", 10 * GBIT, 0.001)
    cluster.validate()
    return cluster


class TestFormulationStructure:
    def test_variable_groups_present(self, tiny2, tiny_model):
        planner = HelixMilpPlanner(tiny2, tiny_model, hints=None)
        formulation = planner.build_formulation()
        names = {v.name for v in formulation.problem.variables}
        assert "s[l4]" in names and "s[t4]" in names
        assert any(n.startswith("b[l4][") for n in names)
        assert "f[coordinator->l4]" in names
        assert "d[l4->t4]" in names
        assert "cond1[l4->t4]" in names and "cond2[l4->t4]" in names

    def test_no_cond_vars_without_partial_inference(self, tiny2, tiny_model):
        planner = HelixMilpPlanner(
            tiny2, tiny_model, hints=None, partial_inference=False
        )
        formulation = planner.build_formulation()
        names = {v.name for v in formulation.problem.variables}
        assert not any(n.startswith("cond") for n in names)

    def test_b_variables_bounded_by_vram(self, tiny2, tiny_model):
        planner = HelixMilpPlanner(tiny2, tiny_model, hints=None)
        formulation = planner.build_formulation()
        profiler = Profiler()
        for nid in ("l4", "t4"):
            expected = min(
                profiler.max_layers(tiny2.node(nid), tiny_model),
                tiny_model.num_layers,
            )
            assert len(formulation.b_vars[nid]) == expected

    def test_throughput_table_matches_profiler(self, tiny2, tiny_model):
        planner = HelixMilpPlanner(tiny2, tiny_model, hints=None)
        formulation = planner.build_formulation()
        profiler = planner.profiler
        node = tiny2.node("t4")
        for j, t in enumerate(formulation.throughputs["t4"], start=1):
            assert t == pytest.approx(profiler.throughput(node, tiny_model, j))

    def test_upper_bound_constrains_objective(self, tiny2, tiny_model):
        planner = HelixMilpPlanner(tiny2, tiny_model, hints=None, time_limit=20)
        formulation = planner.build_formulation()
        solution = solve_with_highs(formulation.problem, time_limit=20)
        assert solution.objective <= formulation.upper_bound + 1e-6


class TestMilpOptimality:
    def test_solution_matches_flow_of_orchestrated_placement(
        self, tiny2, tiny_model
    ):
        """MILP objective == max-flow of the placement it orchestrates."""
        planner = HelixMilpPlanner(tiny2, tiny_model, hints=None, time_limit=30)
        result = planner.plan()
        assert result.milp.objective == pytest.approx(
            result.max_throughput, rel=1e-4
        )

    def test_beats_brute_force_equal(self, tiny2, tiny_model):
        """On 2 nodes, enumerate all placements and verify MILP optimality."""
        planner = HelixMilpPlanner(tiny2, tiny_model, hints=None, time_limit=30)
        result = planner.plan()
        profiler = planner.profiler
        L = tiny_model.num_layers
        best = 0.0
        k = {
            nid: min(profiler.max_layers(tiny2.node(nid), tiny_model), L)
            for nid in ("l4", "t4")
        }
        for s1 in range(L):
            for n1 in range(1, k["l4"] + 1):
                if s1 + n1 > L:
                    continue
                for s2 in range(L):
                    for n2 in range(1, k["t4"] + 1):
                        if s2 + n2 > L:
                            continue
                        placement = ModelPlacement.from_intervals(
                            L, {"l4": (s1, s1 + n1), "t4": (s2, s2 + n2)}
                        )
                        best = max(best, planner._placement_value(placement, tiny2))
        assert result.max_throughput == pytest.approx(best, rel=1e-3)


class TestCanonicalization:
    def test_sorts_within_identical_groups(self, small_cluster, tiny_model):
        planner = HelixMilpPlanner(small_cluster, tiny_model, hints=None)
        intervals = {"t4-0": (4, 8), "t4-1": (0, 4), "a100-0": (0, 8)}
        canonical = planner._canonicalize(intervals, small_cluster)
        # t4-0 (lexicographically first) takes the earlier interval.
        assert canonical["t4-0"] == (0, 4)
        assert canonical["t4-1"] == (4, 8)
        assert canonical["a100-0"] == (0, 8)

    def test_preserves_flow_value(self, small_cluster, tiny_model):
        planner = HelixMilpPlanner(small_cluster, tiny_model, hints=None)
        placement = PetalsPlanner(small_cluster, tiny_model).plan().placement
        intervals = {
            nid: (st.start, st.end) for nid, st in placement.assignments.items()
        }
        canonical = planner._canonicalize(intervals, small_cluster)
        original_value = planner._placement_value(placement, small_cluster)
        canonical_value = planner._placement_value(
            ModelPlacement.from_intervals(tiny_model.num_layers, canonical),
            small_cluster,
        )
        assert canonical_value == pytest.approx(original_value, rel=1e-6)


class TestLNS:
    def test_lns_never_worsens(self, small_cluster, tiny_model):
        with_lns = HelixMilpPlanner(
            small_cluster, tiny_model, time_limit=10, mip_rel_gap=0.05,
            lns_rounds=3, lns_window=2, lns_time_limit=5,
        ).plan()
        without = HelixMilpPlanner(
            small_cluster, tiny_model, time_limit=10, mip_rel_gap=0.05,
        ).plan()
        assert with_lns.max_throughput >= without.max_throughput * 0.999

    def test_lns_improves_poor_start(self, small_cluster, tiny_model):
        planner = HelixMilpPlanner(
            small_cluster, tiny_model, hints=None, time_limit=5,
            lns_rounds=4, lns_window=2, lns_time_limit=5,
        )
        formulation = planner.build_formulation()
        # Deliberately bad incumbent: everything stacked on layer 0..2.
        poor = ModelPlacement.from_intervals(
            tiny_model.num_layers,
            {"a100-0": (0, 8), "l4-0": (0, 2), "t4-0": (0, 2), "t4-1": (0, 2)},
        )
        improved = planner._lns_improve(formulation, small_cluster, poor)
        assert planner._placement_value(improved, small_cluster) >= (
            planner._placement_value(poor, small_cluster)
        )
