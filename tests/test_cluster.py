"""Tests for cluster construction, presets, and the profiler."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import (
    A100_40G,
    COORDINATOR,
    Cluster,
    ComputeNode,
    GPU_CATALOG,
    L4,
    Link,
    Profiler,
    T4,
    V100,
    geo_distributed_24,
    get_gpu,
    high_heterogeneity_42,
    single_cluster_24,
    small_cluster_fig12,
    toy_cluster_fig1,
    toy_cluster_fig2,
)
from repro.core.errors import ClusterError
from repro.core.units import GBIT, MBIT
from repro.models.specs import LLAMA_30B, LLAMA_70B


class TestGPUCatalog:
    def test_table3_values(self):
        assert GPU_CATALOG["H100"].datasheet_fp16_tflops == 1979
        assert GPU_CATALOG["A100-40G"].vram_bytes == 40e9
        assert GPU_CATALOG["L4"].mem_bandwidth == 300e9
        assert GPU_CATALOG["T4"].power_watts == 70

    def test_lookup_error_lists_names(self):
        with pytest.raises(KeyError, match="known GPUs"):
            get_gpu("B200")

    def test_compute_ordering_matches_paper(self):
        # Paper Fig. 1: compute capacity order A100 > L4 > T4.
        assert A100_40G.fp16_flops > L4.fp16_flops > T4.fp16_flops


class TestComputeNode:
    def test_multi_gpu_aggregation(self):
        node = ComputeNode("n0", T4, num_gpus=4)
        assert node.fp16_flops == 4 * T4.fp16_flops
        assert node.vram_bytes == 4 * T4.vram_bytes
        assert node.gpu_label == "4xT4"

    def test_reserved_id_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            ComputeNode(COORDINATOR, T4)

    def test_positive_gpu_count(self):
        with pytest.raises(ValueError, match="num_gpus"):
            ComputeNode("n0", T4, num_gpus=0)


class TestLink:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Link("a", "a", 1e9)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            Link("a", "b", 0.0)

    def test_transmission_time(self):
        link = Link("a", "b", bandwidth=1000.0, latency=0.5)
        assert link.transmission_time(500) == pytest.approx(0.5)


class TestClusterBuilder:
    def test_duplicate_node_rejected(self):
        cluster = Cluster()
        cluster.add_node("n0", T4)
        with pytest.raises(ClusterError, match="duplicate"):
            cluster.add_node("n0", L4)

    def test_link_to_unknown_node_rejected(self):
        cluster = Cluster()
        cluster.add_node("n0", T4)
        with pytest.raises(ClusterError, match="not a known node"):
            cluster.connect("n0", "ghost", 1e9)

    def test_bidirectional_connect(self):
        cluster = Cluster()
        cluster.add_node("a", T4)
        cluster.add_node("b", T4)
        cluster.connect("a", "b", 1e9)
        assert cluster.has_link("a", "b") and cluster.has_link("b", "a")

    def test_unidirectional_connect(self):
        cluster = Cluster()
        cluster.add_node("a", T4)
        cluster.add_node("b", T4)
        cluster.connect("a", "b", 1e9, bidirectional=False)
        assert cluster.has_link("a", "b") and not cluster.has_link("b", "a")

    def test_remove_link(self):
        cluster = Cluster()
        cluster.add_node("a", T4)
        cluster.add_node("b", T4)
        cluster.connect("a", "b", 1e9)
        cluster.remove_link("a", "b")
        assert not cluster.has_link("a", "b")
        with pytest.raises(ClusterError):
            cluster.remove_link("a", "b")

    def test_remove_node_drops_incident_links(self):
        cluster = Cluster()
        cluster.add_node("a", T4)
        cluster.add_node("b", T4)
        cluster.add_node("c", T4)
        cluster.connect("a", "b", 1e9)
        cluster.connect("b", "c", 1e9)
        cluster.connect("coordinator", "b", 1e9)
        removed = cluster.remove_node("b")
        assert removed.node_id == "b"
        assert "b" not in cluster
        assert not cluster.has_link("a", "b")
        assert not cluster.has_link("b", "c")
        assert not cluster.has_link("coordinator", "b")
        assert not cluster.has_link("b", "coordinator")

    def test_remove_unknown_node_raises(self):
        with pytest.raises(ClusterError, match="unknown node"):
            Cluster().remove_node("ghost")

    def test_remove_node_clears_availability(self):
        cluster = Cluster()
        cluster.add_node("a", T4)
        cluster.set_node_available("a", False)
        cluster.remove_node("a")
        assert cluster.down_node_ids == []

    def test_node_availability_roundtrip(self, small_cluster):
        assert small_cluster.node_available("t4-0")
        small_cluster.set_node_available("t4-0", False)
        assert not small_cluster.node_available("t4-0")
        assert small_cluster.down_node_ids == ["t4-0"]
        assert "t4-0" not in small_cluster.available_node_ids
        small_cluster.validate()  # down nodes are still valid topology
        small_cluster.set_node_available("t4-0", True)
        assert small_cluster.available_node_ids == small_cluster.node_ids

    def test_availability_unknown_node_raises(self, small_cluster):
        with pytest.raises(ClusterError, match="unknown node"):
            small_cluster.set_node_available("ghost", False)
        with pytest.raises(ClusterError, match="unknown node"):
            small_cluster.node_available("ghost")

    def test_subcluster_defaults_to_available(self, small_cluster):
        small_cluster.set_node_available("a100-0", False)
        sub = small_cluster.subcluster()
        assert sorted(sub.node_ids) == ["l4-0", "t4-0", "t4-1"]
        assert sub.node_available("l4-0")
        # Links among kept nodes and their coordinator links survive.
        assert sub.has_link("l4-0", "t4-0")
        assert sub.has_link("coordinator", "t4-1")
        assert not any("a100-0" in key for key in sub.links)
        sub.validate()

    def test_subcluster_unknown_node_raises(self, small_cluster):
        with pytest.raises(ClusterError, match="unknown nodes"):
            small_cluster.subcluster(["ghost"])

    def test_set_link_bandwidth_swaps_link(self, small_cluster):
        original = small_cluster.link("a100-0", "l4-0")
        updated = small_cluster.set_link_bandwidth("a100-0", "l4-0", 1e6)
        assert updated.bandwidth == 1e6
        assert updated.latency == original.latency
        assert small_cluster.link("a100-0", "l4-0") is updated
        # The reverse direction is untouched.
        assert small_cluster.link("l4-0", "a100-0").bandwidth == original.bandwidth

    def test_validate_requires_coordinator_links(self):
        cluster = Cluster()
        cluster.add_node("a", T4)
        cluster.add_node("b", T4)
        cluster.connect("a", "b", 1e9)
        with pytest.raises(ClusterError, match="coordinator"):
            cluster.validate()

    def test_validate_empty_cluster(self):
        with pytest.raises(ClusterError, match="no compute nodes"):
            Cluster().validate()

    def test_region_helpers(self, small_cluster):
        assert small_cluster.regions() == ["r0"]
        assert len(small_cluster.nodes_in_region("r0")) == 4

    def test_container_protocol(self, small_cluster):
        assert len(small_cluster) == 4
        assert "a100-0" in small_cluster
        assert "ghost" not in small_cluster
        assert {n.node_id for n in small_cluster} == set(small_cluster.node_ids)


class TestPresets:
    def test_single_cluster_composition(self):
        cluster = single_cluster_24()
        counts = cluster.gpu_type_counts()
        assert counts == {"A100-40G": 4, "L4": 8, "T4": 12}
        # Full mesh among 24 nodes plus coordinator links, both directions.
        assert len(cluster.links) == 24 * 23 + 2 * 24

    def test_geo_distributed_slow_interregion_links(self):
        cluster = geo_distributed_24()
        fast = cluster.link("a100-0", "a100-1")
        slow = cluster.link("a100-0", "l4a-0")
        assert fast.bandwidth == 10 * GBIT
        assert slow.bandwidth == 100 * MBIT
        assert slow.latency == pytest.approx(0.050)

    def test_geo_distributed_regions(self):
        cluster = geo_distributed_24()
        assert len(cluster.regions()) == 3
        assert len(cluster.nodes_in_region("region-1")) == 10

    def test_high_heterogeneity_composition(self):
        cluster = high_heterogeneity_42()
        counts = cluster.gpu_type_counts()
        assert len(cluster) == 42
        assert counts["2xL4"] == 4 and counts["4xT4"] == 4 and counts["V100"] == 6

    def test_toy_clusters_validate(self):
        for factory in (toy_cluster_fig1, toy_cluster_fig2, small_cluster_fig12):
            cluster = factory()
            cluster.validate()

    def test_fig2_directed_topology(self):
        cluster = toy_cluster_fig2()
        assert cluster.has_link(COORDINATOR, "a100")
        assert not cluster.has_link("a100", COORDINATOR)
        assert cluster.link("t4-1", "t4-2").bandwidth == 60 * MBIT


class TestProfiler:
    def test_max_layers_match_paper_case_study(self, profiler):
        cluster = single_cluster_24()
        assert profiler.max_layers(cluster.node("t4-0"), LLAMA_70B) == 4
        assert profiler.max_layers(cluster.node("l4-0"), LLAMA_70B) == 7
        assert profiler.max_layers(cluster.node("a100-0"), LLAMA_70B) == 11

    def test_throughput_decreases_with_layers(self, profiler):
        node = single_cluster_24().node("a100-0")
        rates = [profiler.throughput(node, LLAMA_70B, j) for j in range(1, 12)]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_per_layer_rate_ordering(self, profiler):
        cluster = single_cluster_24()
        a100 = profiler.throughput(cluster.node("a100-0"), LLAMA_70B, 1)
        l4 = profiler.throughput(cluster.node("l4-0"), LLAMA_70B, 1)
        t4 = profiler.throughput(cluster.node("t4-0"), LLAMA_70B, 1)
        assert a100 > l4 > t4

    def test_node_profile_table(self, profiler):
        node = single_cluster_24().node("t4-0")
        prof = profiler.node_profile(node, LLAMA_70B)
        assert prof.max_layers == 4
        assert len(prof.throughput_per_layers) == 4
        assert prof.throughput(4) == prof.throughput_per_layers[3]
        with pytest.raises(ValueError):
            prof.throughput(5)

    def test_batch_time_components(self, profiler):
        node = single_cluster_24().node("t4-0")
        base = profiler.batch_time(node, LLAMA_70B, 0.0, 0)
        assert base == pytest.approx(profiler.batch_overhead)
        more = profiler.batch_time(node, LLAMA_70B, 1000.0, 4)
        assert more > base

    def test_batch_time_rejects_negative_work(self, profiler):
        node = single_cluster_24().node("t4-0")
        with pytest.raises(ValueError):
            profiler.batch_time(node, LLAMA_70B, -1.0, 4)

    def test_link_capacity_token_vs_activation(self, profiler):
        link = Link("a", "b", bandwidth=1e9)
        token_rate = profiler.link_token_capacity(link, LLAMA_70B, False)
        act_rate = profiler.link_token_capacity(link, LLAMA_70B, True)
        assert token_rate == pytest.approx(1e9 / 4)
        assert act_rate == pytest.approx(1e9 / 16384)

    def test_kv_capacity_positive_for_paper_layouts(self, profiler):
        cluster = single_cluster_24()
        assert profiler.kv_capacity(cluster.node("t4-0"), LLAMA_70B, 4) > 0
        assert profiler.kv_capacity(cluster.node("a100-0"), LLAMA_70B, 11) > 0

    @given(j=st.integers(min_value=1, max_value=11))
    def test_throughput_times_layers_bounded_by_compute(self, j):
        profiler = Profiler()
        node = ComputeNode("n", A100_40G)
        rate = profiler.throughput(node, LLAMA_70B, j)
        # j layers at `rate` tokens/s cannot exceed the pure compute rate.
        assert rate * j <= profiler.compute_rate(node, LLAMA_70B) + 1e-6

    def test_multi_gpu_node_outperforms_single(self, profiler):
        single = ComputeNode("s", T4)
        double = ComputeNode("d", T4, num_gpus=2)
        assert profiler.throughput(double, LLAMA_70B, 4) > profiler.throughput(
            single, LLAMA_70B, 4
        )
        assert profiler.max_layers(double, LLAMA_70B) > profiler.max_layers(
            single, LLAMA_70B
        )
