"""The documented public API surface stays importable and consistent."""

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "0.1.0"

    @pytest.mark.parametrize(
        "name",
        [
            # errors
            "ReproError", "ClusterError", "PlacementError", "SchedulingError",
            "SimulationError", "SolverError",
            # models
            "ModelSpec", "LLAMA_30B", "LLAMA_70B", "GPT3_175B", "GROK_314B",
            "LLAMA3_405B", "get_model",
            # cluster
            "GPUSpec", "ComputeNode", "Link", "Cluster", "Profiler",
            "COORDINATOR", "single_cluster_24", "geo_distributed_24",
            "high_heterogeneity_42", "toy_cluster_fig1", "toy_cluster_fig2",
            "small_cluster_fig12",
            # flow
            "FlowNetwork", "FlowGraph", "FlowSolution",
            # placement
            "ModelPlacement", "StageAssignment", "PlannerResult",
            "HelixMilpPlanner", "SwarmPlanner", "PetalsPlanner",
            "SeparatePipelinesPlanner", "prune_cluster",
            # scheduling
            "HelixScheduler", "SwarmScheduler", "RandomScheduler",
            "ShortestQueueScheduler", "FixedPipelineScheduler",
            "InterleavedWeightedRoundRobin",
            # sim + trace + bench
            "Simulation", "Request", "ServingMetrics", "AzureTraceConfig",
            "synthesize_azure_trace", "offline_arrivals", "poisson_arrivals",
            "diurnal_arrivals", "rate_for_utilization", "run_offline",
            "run_online", "make_planner", "make_scheduler",
            # online dynamics
            "OnlineController", "NodeFailure", "NodeRecovery", "NodeJoin",
            "LinkDegradation", "LinkRecovery", "NetworkPartition",
            "PartitionHeal", "ChurnConfig", "random_churn",
            "scripted_schedule", "DisruptionReport", "goodput_timeline",
            # scenarios + testkit
            "SCENARIO_FAMILIES", "Scenario", "generate_scenario",
            "scenario_matrix", "ScenarioReport", "Violation",
            "run_scenario", "verify_scenario",
        ],
    )
    def test_exported(self, name):
        assert hasattr(repro, name), f"repro.{name} missing from public API"

    def test_error_hierarchy(self):
        for error in (
            repro.ClusterError, repro.PlacementError, repro.SchedulingError,
            repro.SimulationError, repro.SolverError,
        ):
            assert issubclass(error, repro.ReproError)

    def test_planner_names_are_distinct(self):
        names = {
            repro.HelixMilpPlanner.name,
            repro.SwarmPlanner.name,
            repro.PetalsPlanner.name,
            repro.SeparatePipelinesPlanner.name,
        }
        assert len(names) == 4

    def test_scheduler_names_are_distinct(self):
        names = {
            repro.HelixScheduler.name,
            repro.SwarmScheduler.name,
            repro.RandomScheduler.name,
            repro.ShortestQueueScheduler.name,
            repro.FixedPipelineScheduler.name,
        }
        assert len(names) == 5

    def test_docstrings_on_public_classes(self):
        for cls in (
            repro.Cluster, repro.Profiler, repro.HelixMilpPlanner,
            repro.HelixScheduler, repro.Simulation, repro.ModelPlacement,
            repro.FlowGraph, repro.InterleavedWeightedRoundRobin,
        ):
            assert cls.__doc__ and len(cls.__doc__.strip()) > 20
