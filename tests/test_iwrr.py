"""Tests for interleaved weighted round-robin."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduling import InterleavedWeightedRoundRobin


class TestIWRR:
    def test_proportions_match_weights(self):
        iwrr = InterleavedWeightedRoundRobin({"a": 5.0, "b": 1.0, "c": 1.0})
        picks = Counter(iwrr.select() for _ in range(700))
        assert picks["a"] == 500 and picks["b"] == 100 and picks["c"] == 100

    def test_interleaving_no_long_bursts(self):
        # With weights 5/1/1, 'b' and 'c' appear spread out, not at the end.
        iwrr = InterleavedWeightedRoundRobin({"a": 5.0, "b": 1.0, "c": 1.0})
        window = [iwrr.select() for _ in range(7)]
        assert "b" in window and "c" in window

    def test_equal_weights_alternate(self):
        iwrr = InterleavedWeightedRoundRobin({"x": 1.0, "y": 1.0})
        seq = [iwrr.select() for _ in range(6)]
        assert seq[0] != seq[1] and seq[2] != seq[3]

    def test_zero_weight_candidates_dropped(self):
        iwrr = InterleavedWeightedRoundRobin({"a": 1.0, "b": 0.0, "c": -2.0})
        assert iwrr.candidates == ["a"]

    def test_empty_selector_is_falsy(self):
        iwrr = InterleavedWeightedRoundRobin({})
        assert not iwrr
        assert iwrr.select() is None

    def test_masking_restricts_choice(self):
        iwrr = InterleavedWeightedRoundRobin({"a": 10.0, "b": 1.0})
        for _ in range(5):
            assert iwrr.select(allowed=["b"]) == "b"

    def test_fully_masked_returns_none(self):
        iwrr = InterleavedWeightedRoundRobin({"a": 1.0})
        assert iwrr.select(allowed=[]) is None
        assert iwrr.select(allowed=["ghost"]) is None

    def test_masked_candidate_recovers_share(self):
        iwrr = InterleavedWeightedRoundRobin({"a": 1.0, "b": 1.0})
        for _ in range(4):
            iwrr.select(allowed=["a"])
        picks = Counter(iwrr.select() for _ in range(20))
        # Masked-out b was not starved into debt: both get fair share after.
        assert picks["b"] >= 9

    def test_update_weight_add_and_remove(self):
        iwrr = InterleavedWeightedRoundRobin({"a": 1.0})
        iwrr.update_weight("b", 3.0)
        assert set(iwrr.candidates) == {"a", "b"}
        iwrr.update_weight("a", 0.0)
        assert iwrr.candidates == ["b"]

    def test_float_weights(self):
        iwrr = InterleavedWeightedRoundRobin({"a": 2.5, "b": 0.5})
        picks = Counter(iwrr.select() for _ in range(300))
        assert picks["a"] == 250 and picks["b"] == 50

    @settings(max_examples=30, deadline=None)
    @given(
        weights=st.dictionaries(
            st.sampled_from("abcdef"),
            st.floats(min_value=0.1, max_value=20, allow_nan=False),
            min_size=1,
            max_size=6,
        )
    )
    def test_long_run_frequencies_proportional(self, weights):
        iwrr = InterleavedWeightedRoundRobin(weights)
        rounds = 2000
        picks = Counter(iwrr.select() for _ in range(rounds))
        total = sum(weights.values())
        for candidate, weight in weights.items():
            expected = rounds * weight / total
            assert abs(picks[candidate] - expected) <= max(2.0, 0.02 * rounds)


class TestCachedSelection:
    """The allocation-free select: cached order/total, same sequence."""

    def test_cached_sequence_matches_reference_formulation(self):
        weights = {"a": 5.0, "b": 1.0, "c": 1.0}
        iwrr = InterleavedWeightedRoundRobin(weights)
        # Reference smooth-WRR computed by hand over the same weights.
        credit = {c: 0.0 for c in weights}
        expected = []
        for _ in range(21):
            for c in weights:
                credit[c] += weights[c]
            best = max(weights, key=lambda c: credit[c])
            # first-max-wins on ties, like insertion order iteration
            for c in weights:
                if credit[c] == credit[best]:
                    best = c
                    break
            credit[best] -= sum(weights.values())
            expected.append(best)
        assert [iwrr.select() for _ in range(21)] == expected

    def test_update_weight_invalidates_cache(self):
        iwrr = InterleavedWeightedRoundRobin({"a": 1.0, "b": 1.0})
        iwrr.select()
        iwrr.update_weight("c", 3.0)
        assert set(iwrr.candidates) == {"a", "b", "c"}
        picks = Counter(iwrr.select() for _ in range(50))
        assert picks["c"] == 30  # 3/5 of 50: the new total is in effect
        iwrr.update_weight("c", 0.0)
        assert "c" not in iwrr.candidates
        picks = Counter(iwrr.select() for _ in range(20))
        assert picks["c"] == 0 and picks["a"] == 10

    def test_masked_select_accepts_any_iterable(self):
        iwrr = InterleavedWeightedRoundRobin({"a": 1.0, "b": 1.0})
        # A generator (single-pass) must work like a list.
        assert iwrr.select(allowed=(c for c in ["b"])) == "b"
        assert iwrr.select(allowed=["b"]) == "b"
        assert iwrr.select(allowed=()) is None
