"""Tier-1 smoke sweep: the scenario matrix under full verification.

Every address runs end-to-end — plan, schedule, simulate (with churn
where the draw includes it) — with all cross-layer invariants, the
``FlowGraph.reevaluate`` differential oracle, and a double-run
determinism check. Any failure message ends with the exact
``python -m repro.testkit <family> <seed>`` command that replays it.

The extended many-seed sweep (``--seeds``/``--size full``) lives in
``benchmarks/bench_scenario_sweep.py`` and the scheduled CI job.
"""

import pytest

from repro.scenarios import SCENARIO_FAMILIES, generate_scenario, scenario_matrix
from repro.testkit import (
    assert_scenario_ok,
    run_scenario,
    verify_scenario,
)
from repro.testkit.harness import ScenarioReport
from repro.testkit.invariants import Violation

#: 6 seeds x 4 families = 24 addresses in tier-1 (acceptance: >= 20
#: scenarios across >= 3 families).
SMOKE_MATRIX = scenario_matrix(seeds=range(6))


@pytest.mark.scenario
@pytest.mark.parametrize(
    "family,seed,size",
    SMOKE_MATRIX,
    ids=[f"{family}-{seed}" for family, seed, size in SMOKE_MATRIX],
)
def test_scenario_invariants_hold(family, seed, size):
    report = verify_scenario(
        family, seed, size, determinism=True, flow_differential=True
    )
    assert_scenario_ok(report)


class TestSweepMachinery:
    def test_failure_message_carries_repro_command(self):
        scenario = generate_scenario("full_mesh", 0)
        report = ScenarioReport(scenario=scenario)
        report.violations.append(Violation("demo", "synthetic breach"))
        message = report.failure_message()
        assert "synthetic breach" in message
        assert scenario.repro_command() in message
        with pytest.raises(AssertionError, match="repro.testkit full_mesh 0"):
            assert_scenario_ok(report)

    def test_report_ok_when_no_violations(self):
        report = run_scenario(generate_scenario("star", 1))
        assert report.ok
        assert report.planned_throughput > 0
        assert report.metrics is not None
        assert report.fingerprint

    def test_churny_scenarios_present_in_matrix(self):
        # The matrix must actually exercise online dynamics: at least one
        # smoke address per sweep carries churn events.
        churny = [
            (family, seed)
            for family, seed, size in SMOKE_MATRIX
            if generate_scenario(family, seed, size).churn
        ]
        assert churny, "no smoke scenario draws a churn schedule"

    def test_matrix_spans_planners_and_schedulers(self):
        planners = set()
        schedulers = set()
        for family, seed, size in SMOKE_MATRIX:
            scenario = generate_scenario(family, seed, size)
            planners.add(scenario.planner_method)
            schedulers.add(scenario.scheduler_method)
        assert len(planners) >= 2
        assert len(schedulers) >= 3

    def test_cli_verifies_one_address(self, capsys):
        from repro.testkit.__main__ import main

        exit_code = main(["star", "1", "--skip-determinism"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "OK: every invariant and oracle held" in out

    def test_cli_rejects_unknown_family(self):
        from repro.testkit.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["moebius", "0"])
        assert excinfo.value.code == 2
