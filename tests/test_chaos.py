"""Gray-failure chaos suite: detection, lifecycle policy, fault injection.

The acceptance criteria of the robustness PR, as tier-1 smoke tests:

* killing the most-loaded node in detection mode confirms within a
  bounded MTTD with zero false positives on a fault-free control trace;
* request conservation (injected == finished + shed + lost + in-flight)
  holds on chaos scenario addresses;
* goodput recovers to >= 75% of its pre-fault level after detection;
* a default-constructed :class:`RequestPolicy` is bit-identical to the
  legacy (no-policy) semantics.
"""

import math

import pytest

from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph
from repro.online import (
    FlakyLink,
    NodeFailure,
    OnlineController,
    StragglerEnd,
    StragglerStart,
    ZombieNode,
)
from repro.scheduling import HelixScheduler
from repro.sim import Request, RequestPolicy, Simulation
from repro.testkit import assert_scenario_ok, check_chaos, verify_scenario


@pytest.fixture()
def placement8():
    return ModelPlacement.from_intervals(
        8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
    )


def make_simulation(cluster, model, placement, requests, **kwargs):
    flow = FlowGraph(cluster, model, placement).solve()
    scheduler = HelixScheduler(cluster, model, placement, flow=flow)
    return Simulation(cluster, model, placement, scheduler, requests, **kwargs)


def steady_trace(n, spacing, input_len=32, output_len=8):
    return [
        Request(f"r{i}", input_len, output_len, arrival_time=i * spacing)
        for i in range(n)
    ]


def assert_conserved(sim, metrics):
    __tracebackhide__ = True
    violations = check_chaos(sim, metrics)
    assert not violations, "\n".join(str(v) for v in violations)


# ----------------------------------------------------------------------
# Failure detection
# ----------------------------------------------------------------------
class TestDetection:
    def test_kill_most_loaded_node_confirms_within_bounded_mttd(
        self, small_cluster, tiny_model, placement8
    ):
        """A silent crash of the strongest node is confirmed, bounded MTTD."""
        requests = steady_trace(60, 0.2)
        controller = OnlineController(
            tiny_model,
            events=[NodeFailure(2.0, "a100-0")],
            replan=False,
            detection_mode=True,
        )
        sim = make_simulation(
            small_cluster, tiny_model, placement8, requests,
            max_time=60.0, seed=0, controller=controller, debug_validate=True,
        )
        metrics = sim.run()

        assert len(controller.detections) == 1
        _, node_id, _, mttd = controller.detections[0]
        assert node_id == "a100-0"
        assert 0.0 < mttd < 6.0
        assert controller.detector.false_positives == 0
        assert "a100-0" in sim.down_nodes
        # The replica absorbs the failure: everything still finishes.
        assert metrics.requests_finished == 60
        assert metrics.requests_retried > 0
        assert sim.dead_node_token_violations() == []
        assert_conserved(sim, metrics)

        report = controller.report(sim)
        assert report.mttd_mean == pytest.approx(mttd)
        assert report.false_positives == 0
        # End-to-end repair time: goodput regains its bar only after the
        # confirmation reacted, so detection always precedes recovery.
        # (The default 2 s window has no full pre-fault bucket before the
        # t=2 kill; 1 s buckets resolve the pre-fault goodput.)
        repair = controller.report(sim, window=1.0)
        assert math.isfinite(repair.mttr)
        assert repair.mttd_max <= repair.mttr

    def test_simultaneous_node_failures_are_all_detected(
        self, small_cluster, tiny_model, placement8
    ):
        """Two nodes dying at the same instant each get their own verdict.

        Regression guard for the detector's suspicion bookkeeping: a
        confirmation must not clear (or mask) the other node's pending
        suspicion.
        """
        requests = steady_trace(60, 0.2)
        controller = OnlineController(
            tiny_model,
            events=[NodeFailure(2.0, "a100-0"), NodeFailure(2.0, "l4-0")],
            replan=False,
            detection_mode=True,
        )
        sim = make_simulation(
            small_cluster, tiny_model, placement8, requests,
            max_time=60.0, seed=0, controller=controller,
        )
        metrics = sim.run()
        assert {row[1] for row in controller.detections} == {"a100-0", "l4-0"}
        for _, _, _, mttd in controller.detections:
            assert 0.0 < mttd < 6.0
        assert controller.detector.false_positives == 0
        assert sim.down_nodes >= {"a100-0", "l4-0"}
        # The surviving replica pair ({t4-1} x {t4-0}) carries the trace.
        assert metrics.requests_finished == 60
        assert sim.dead_node_token_violations() == []
        assert_conserved(sim, metrics)

    def test_fault_free_control_has_zero_false_positives(
        self, small_cluster, tiny_model, placement8
    ):
        """Detection over a healthy run: no suspicion survives, no FPs."""
        requests = steady_trace(40, 0.2)
        controller = OnlineController(
            tiny_model, events=[], replan=False, detection_mode=True
        )
        sim = make_simulation(
            small_cluster, tiny_model, placement8, requests,
            max_time=60.0, seed=0, controller=controller,
        )
        metrics = sim.run()
        assert controller.detections == []
        assert controller.detector.false_positives == 0
        assert controller.detector.heartbeats_sent > 0
        assert metrics.requests_finished == 40
        assert_conserved(sim, metrics)

    def test_detection_does_not_perturb_data_plane(
        self, small_cluster, tiny_model, placement8
    ):
        """Heartbeats ride a control plane: token timings are untouched."""
        requests = steady_trace(30, 0.1)
        plain = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0,
        )
        plain_metrics = plain.run()

        controller = OnlineController(
            tiny_model, events=[], replan=False, detection_mode=True
        )
        detected = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0, controller=controller,
        )
        detected_metrics = detected.run()

        assert detected.token_timeline == plain.token_timeline
        assert detected_metrics.requests_finished == plain_metrics.requests_finished
        assert detected_metrics.decode_tokens == plain_metrics.decode_tokens

    def test_goodput_recovers_after_detection(
        self, small_cluster, tiny_model, placement8
    ):
        """Post-detection goodput regains >= 75% of the pre-fault level."""
        requests = steady_trace(120, 0.25)
        controller = OnlineController(
            tiny_model,
            events=[NodeFailure(8.0, "a100-0")],
            replan=False,
            detection_mode=True,
        )
        sim = make_simulation(
            small_cluster, tiny_model, placement8, requests,
            max_time=90.0, seed=0, controller=controller,
        )
        metrics = sim.run()
        assert metrics.requests_finished == 120
        report = controller.report(sim)
        assert report.pre_disruption_goodput > 0
        assert report.recovery_ratio >= 0.75

    def test_zombie_is_detected_by_progress_watchdog(
        self, small_cluster, tiny_model, placement8
    ):
        """A zombie heartbeats forever; only the watchdog catches it."""
        requests = steady_trace(60, 0.2)
        controller = OnlineController(
            tiny_model,
            events=[ZombieNode(2.0, "a100-0")],
            replan=False,
            detection_mode=True,
        )
        sim = make_simulation(
            small_cluster, tiny_model, placement8, requests,
            max_time=60.0, seed=0, controller=controller, debug_validate=True,
        )
        metrics = sim.run()
        assert len(controller.detections) == 1
        _, node_id, kind, mttd = controller.detections[0]
        assert node_id == "a100-0"
        assert kind == "zombie"
        assert 0.0 < mttd < 6.0
        assert controller.detector.false_positives == 0
        assert metrics.requests_finished == 60
        assert sim.dead_node_token_violations() == []
        assert_conserved(sim, metrics)


# ----------------------------------------------------------------------
# Request lifecycle policy
# ----------------------------------------------------------------------
class TestRequestPolicy:
    def test_default_policy_is_legacy(self):
        assert RequestPolicy().is_legacy
        assert not RequestPolicy(max_retries=3).is_legacy

    def test_retry_delay_is_deterministic_and_backs_off(self):
        policy = RequestPolicy(retry_backoff=0.2, backoff_factor=2.0, jitter=0.5)
        d1 = policy.retry_delay("r0", 1)
        d2 = policy.retry_delay("r0", 2)
        assert d1 == policy.retry_delay("r0", 1)  # pure function
        assert d2 > d1  # exponential growth dominates the jitter
        assert policy.retry_delay("r0", 1) != policy.retry_delay("r1", 1)

    def test_default_policy_matches_no_policy_bit_identically(
        self, small_cluster, tiny_model, placement8
    ):
        requests = steady_trace(30, 0.1)
        legacy = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0,
        )
        legacy_metrics = legacy.run()
        policied = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0, policy=RequestPolicy(),
        )
        policied_metrics = policied.run()
        assert policied.token_timeline == legacy.token_timeline
        assert policied_metrics.requests_finished == legacy_metrics.requests_finished
        assert policied_metrics.decode_throughput == legacy_metrics.decode_throughput

    def test_admission_control_sheds_when_unschedulable(
        self, small_cluster, tiny_model, placement8
    ):
        """Both stage-0 replicas down: one request queues, the rest shed."""
        requests = steady_trace(10, 0.01, output_len=4)
        sim = make_simulation(
            small_cluster, tiny_model, placement8,
            [Request(r.request_id, r.input_len, r.output_len,
                     arrival_time=r.arrival_time + 0.05) for r in requests],
            max_time=10.0, seed=0,
            policy=RequestPolicy(max_pending=1, deadline=0.5),
        )
        sim.schedule_event(0.0, lambda s: s.fail_node("a100-0"))
        sim.schedule_event(0.0, lambda s: s.fail_node("t4-1"))
        metrics = sim.run()
        assert metrics.requests_shed == 9
        assert metrics.requests_lost == 1  # the queued one hits its deadline
        assert metrics.requests_finished == 0
        assert sim.in_flight_requests == 0
        assert_conserved(sim, metrics)

    def test_deadline_abandons_stuck_requests(
        self, small_cluster, tiny_model, placement8
    ):
        """Requests pending past their deadline are lost, not stuck."""
        requests = steady_trace(10, 0.01, output_len=4)
        sim = make_simulation(
            small_cluster, tiny_model, placement8,
            [Request(r.request_id, r.input_len, r.output_len,
                     arrival_time=r.arrival_time + 0.05) for r in requests],
            max_time=10.0, seed=0, policy=RequestPolicy(deadline=0.5),
        )
        sim.schedule_event(0.0, lambda s: s.fail_node("a100-0"))
        sim.schedule_event(0.0, lambda s: s.fail_node("t4-1"))
        metrics = sim.run()
        assert metrics.requests_lost == 10
        assert metrics.requests_finished == 0
        assert sim.in_flight_requests == 0
        assert_conserved(sim, metrics)

    def test_ttft_timeout_exhausts_retry_budget_on_zombie(
        self, small_cluster, tiny_model
    ):
        """With a single (zombie) serving node, the retry budget runs out."""
        placement = ModelPlacement.from_intervals(8, {"a100-0": (0, 8)})
        requests = [
            Request(f"r{i}", 32, 4, arrival_time=0.05 + i * 0.01)
            for i in range(5)
        ]
        sim = make_simulation(
            small_cluster, tiny_model, placement, requests,
            max_time=30.0, seed=0,
            policy=RequestPolicy(
                ttft_timeout=0.2, max_retries=1, retry_backoff=0.01,
            ),
        )
        sim.schedule_event(0.0, lambda s: s.make_zombie("a100-0"))
        metrics = sim.run()
        assert metrics.requests_lost == 5
        assert metrics.requests_finished == 0
        assert sim.in_flight_requests == 0
        assert_conserved(sim, metrics)

    def test_ttft_timeout_rescues_requests_from_zombie(
        self, small_cluster, tiny_model, placement8
    ):
        """With a replica available, TTFT retries route around the zombie."""
        requests = steady_trace(20, 0.05, output_len=4)
        sim = make_simulation(
            small_cluster, tiny_model, placement8, requests,
            max_time=60.0, seed=0,
            policy=RequestPolicy(
                ttft_timeout=0.3, max_retries=8, retry_backoff=0.02,
            ),
        )
        sim.schedule_event(0.2, lambda s: s.make_zombie("a100-0"))
        metrics = sim.run()
        # Every request ends terminal; the healthy replica serves retries.
        assert metrics.requests_finished + metrics.requests_lost == 20
        assert metrics.requests_finished > 0
        assert metrics.requests_retried > 0
        assert sim.in_flight_requests == 0
        assert_conserved(sim, metrics)

    def test_hedged_dispatch_races_a_straggler(
        self, small_cluster, tiny_model, placement8
    ):
        """Hedging launches a shadow attempt; the winner cancels the loser."""
        requests = [Request("r0", 64, 4, arrival_time=0.0)]
        sim = make_simulation(
            small_cluster, tiny_model, placement8, requests,
            max_time=30.0, seed=0,
            policy=RequestPolicy(hedge_after=0.05),
        )
        # Slow both stage-0 replicas so the first token cannot beat the
        # hedge timer.
        sim.set_compute_slowdown("a100-0", 50.0)
        sim.set_compute_slowdown("t4-1", 50.0)

        hedge_ids = []
        inner = sim.scheduler.schedule

        def spy(request_id, input_len):
            if request_id.endswith("#hedge"):
                hedge_ids.append(request_id)
            return inner(request_id, input_len)

        sim.scheduler.schedule = spy
        metrics = sim.run()
        assert hedge_ids == ["r0#hedge"]
        assert metrics.requests_finished == 1
        assert sim.in_flight_requests == 0
        assert sim.scheduler.active_requests == 0
        assert_conserved(sim, metrics)


# ----------------------------------------------------------------------
# Gray fault injection
# ----------------------------------------------------------------------
class TestGrayFaults:
    def test_straggler_slows_serving_and_restores_bit_identically(
        self, small_cluster, tiny_model, placement8
    ):
        requests = steady_trace(20, 0.05)
        baseline = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0,
        )
        baseline_metrics = baseline.run()

        slow = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0,
        )
        slow.schedule_event(
            0.0, lambda s, ev=StragglerStart(0.0, "a100-0", 8.0): s.apply_event(ev)
        )
        slow_metrics = slow.run()
        assert slow_metrics.requests_finished == 20
        assert slow_metrics.decode_throughput < baseline_metrics.decode_throughput

        # Straggle and recover before any work arrives: the run must be
        # bit-identical to the baseline (set_slowdown(1.0) restores the
        # executor exactly).
        restored = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0,
        )
        restored.schedule_event(
            0.0, lambda s, ev=StragglerStart(0.0, "a100-0", 8.0): s.apply_event(ev)
        )
        restored.schedule_event(
            0.001, lambda s, ev=StragglerEnd(0.001, "a100-0"): s.apply_event(ev)
        )
        restored_metrics = restored.run()
        assert restored.token_timeline == baseline.token_timeline
        assert restored_metrics.decode_throughput == (
            baseline_metrics.decode_throughput
        )

    def test_flaky_link_delays_messages_but_conserves_tokens(
        self, small_cluster, tiny_model, placement8
    ):
        requests = steady_trace(20, 0.05)
        baseline = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0,
        )
        baseline_metrics = baseline.run()

        flaky = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0,
        )
        event = FlakyLink(0.0, "a100-0", "l4-0",
                          drop_probability=0.5, retransmit_delay=0.05)
        flaky.schedule_event(0.0, lambda s, ev=event: s.apply_event(ev))
        flaky_metrics = flaky.run()

        fault = flaky.channels[("a100-0", "l4-0")].fault
        assert fault is not None
        assert fault.messages > 0
        assert fault.drops > 0
        # TCP-style retransmits: every token still arrives, just later.
        assert flaky_metrics.requests_finished == 20
        assert flaky_metrics.decode_tokens == baseline_metrics.decode_tokens
        assert flaky_metrics.decode_throughput <= (
            baseline_metrics.decode_throughput
        )
        assert_conserved(flaky, flaky_metrics)

        flaky.clear_link_flaky("a100-0", "l4-0")
        assert flaky.channels[("a100-0", "l4-0")].fault is None
        assert flaky.channels[("l4-0", "a100-0")].fault is None

    def test_gray_mode_unlatches_when_every_fault_heals(
        self, small_cluster, tiny_model, placement8
    ):
        """Healing the last gray fault re-enables the fast paths.

        Regression guard for the latched ``sim._gray`` flag. A flaky link
        that appears and fully heals *before any traffic crosses it* must
        leave a run indistinguishable from one that never saw a fault:
        exact token times, exact throughput, and the engine back in
        coalesced/vectorized mode. (Under the old one-way latch the rest
        of the run stayed in per-hop mode, whose event interleaving — and
        therefore exact throughput — drifts from the coalesced baseline.)
        """
        requests = [
            Request(f"r{i}", 32, 8, arrival_time=1.0 + i * 0.05)
            for i in range(20)
        ]
        baseline = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0,
        )
        baseline_metrics = baseline.run()
        assert baseline._gray is False

        healed = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0,
        )
        healed.schedule_event(
            0.2, lambda s: s.set_link_flaky("a100-0", "l4-0", 0.5, 0.05)
        )
        healed.schedule_event(
            0.5, lambda s: s.clear_link_flaky("a100-0", "l4-0")
        )
        healed_metrics = healed.run()
        assert healed._gray is False  # the latch released
        assert healed.token_timeline == baseline.token_timeline
        assert healed_metrics.decode_throughput == (
            baseline_metrics.decode_throughput
        )
        assert healed_metrics.requests_finished == 20

        # A heal in the middle of live traffic also unlatches, and the
        # run stays conserved even with drops and retransmits behind it.
        mid = make_simulation(
            small_cluster, tiny_model, placement8, steady_trace(20, 0.05),
            max_time=60.0, seed=0,
        )
        mid.schedule_event(
            0.2, lambda s: s.set_link_flaky("a100-0", "l4-0", 0.5, 0.05)
        )
        mid.schedule_event(
            2.0, lambda s: s.clear_link_flaky("a100-0", "l4-0")
        )
        mid_metrics = mid.run()
        assert mid._gray is False
        assert mid_metrics.requests_finished == 20
        assert_conserved(mid, mid_metrics)

    def test_silent_failure_blackholes_until_confirmed(
        self, small_cluster, tiny_model, placement8
    ):
        """Unannounced crash: the scheduler keeps routing to the corpse."""
        requests = steady_trace(20, 0.05, output_len=4)
        sim = make_simulation(
            small_cluster, tiny_model, placement8, requests,
            max_time=30.0, seed=0,
        )
        sim.schedule_event(0.2, lambda s: s.fail_node("a100-0", announce=False))
        sim.schedule_event(2.0, lambda s: s.confirm_node_failure("a100-0"))
        metrics = sim.run()
        assert metrics.requests_finished == 20
        assert metrics.requests_retried > 0
        assert "a100-0" in sim.down_nodes
        assert sim.dead_node_token_violations() == []
        assert_conserved(sim, metrics)


# ----------------------------------------------------------------------
# Chaos scenario family (generated addresses)
# ----------------------------------------------------------------------
class TestChaosScenarios:
    @pytest.mark.parametrize("seed", range(3))
    def test_chaos_address_verifies(self, seed):
        """Invariants (incl. request conservation) hold, runs reproduce."""
        assert_scenario_ok(verify_scenario("chaos", seed, "smoke"))

    def test_legacy_families_are_unaffected(self):
        from repro.scenarios.generator import (
            SCENARIO_FAMILIES, generate_scenario,
        )
        for family in SCENARIO_FAMILIES:
            scenario = generate_scenario(family, 0, "smoke")
            assert scenario.detection is False
            assert scenario.policy is None

    def test_chaos_scenarios_carry_detection_and_policy(self):
        from repro.scenarios.generator import generate_scenario
        hit_policy = False
        for seed in range(6):
            scenario = generate_scenario("chaos", seed, "smoke")
            assert scenario.detection is True
            assert scenario.churn, "chaos scenarios must inject faults"
            hit_policy = hit_policy or scenario.policy is not None
        assert hit_policy
