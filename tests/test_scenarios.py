"""Scenario generator tests: determinism, family shape, seed plumbing."""

import random

import pytest

from repro.cluster.node import COORDINATOR
from repro.online.events import ChurnConfig, random_churn
from repro.scenarios import (
    SCENARIO_FAMILIES,
    WORKLOAD_KINDS,
    generate_scenario,
    make_workload,
    scenario_matrix,
)
from repro.trace import (
    AzureTraceConfig,
    diurnal_arrivals,
    poisson_arrivals,
    synthesize_azure_trace,
)


def _scenario_digest(scenario):
    """Everything observable about a generated (unrun) scenario."""
    return (
        scenario.cluster.describe(),
        sorted(
            (src, dst, link.bandwidth, link.latency)
            for (src, dst), link in scenario.cluster.links.items()
        ),
        scenario.model,
        [
            (r.request_id, r.input_len, r.output_len, r.arrival_time)
            for r in scenario.requests
        ],
        scenario.workload,
        scenario.churn,
        scenario.planner_method,
        scenario.scheduler_method,
    )


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("family", SCENARIO_FAMILIES)
    def test_same_address_same_scenario(self, family):
        a = generate_scenario(family, seed=3)
        b = generate_scenario(family, seed=3)
        assert _scenario_digest(a) == _scenario_digest(b)

    def test_different_seeds_differ(self):
        a = generate_scenario("full_mesh", seed=0)
        b = generate_scenario("full_mesh", seed=1)
        assert _scenario_digest(a) != _scenario_digest(b)

    def test_generation_ignores_global_random_state(self):
        random.seed(111)
        a = generate_scenario("geo_regions", seed=5)
        random.seed(999)
        b = generate_scenario("geo_regions", seed=5)
        assert _scenario_digest(a) == _scenario_digest(b)

    def test_sizes_are_distinct_tiers(self):
        smoke = generate_scenario("full_mesh", seed=2, size="smoke")
        full = generate_scenario("full_mesh", seed=2, size="full")
        assert smoke.size == "smoke" and full.size == "full"
        assert _scenario_digest(smoke) != _scenario_digest(full)


class TestFamilies:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            generate_scenario("ring", seed=0)

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError, match="unknown size"):
            generate_scenario("full_mesh", seed=0, size="huge")

    @pytest.mark.parametrize("seed", range(4))
    def test_full_mesh_is_complete(self, seed):
        scenario = generate_scenario("full_mesh", seed)
        ids = scenario.cluster.node_ids
        for a in ids:
            for b in ids:
                if a != b:
                    assert scenario.cluster.has_link(a, b)

    @pytest.mark.parametrize("seed", range(4))
    def test_geo_regions_slow_cross_fast_local(self, seed):
        scenario = generate_scenario("geo_regions", seed)
        cluster = scenario.cluster
        assert len(cluster.regions()) >= 2
        slowest_intra = min(
            link.bandwidth
            for (src, dst), link in cluster.links.items()
            if COORDINATOR not in (src, dst)
            and cluster.node(src).region == cluster.node(dst).region
        )
        fastest_inter = max(
            link.bandwidth
            for (src, dst), link in cluster.links.items()
            if COORDINATOR not in (src, dst)
            and cluster.node(src).region != cluster.node(dst).region
        )
        assert fastest_inter < slowest_intra

    @pytest.mark.parametrize("seed", range(4))
    def test_star_has_no_leaf_to_leaf_links(self, seed):
        scenario = generate_scenario("star", seed)
        cluster = scenario.cluster
        degree = {
            nid: sum(
                1 for (src, dst) in cluster.links
                if src == nid and dst != COORDINATOR
            )
            for nid in cluster.node_ids
        }
        hub = max(degree, key=degree.get)
        for (src, dst) in cluster.links:
            if COORDINATOR in (src, dst):
                continue
            assert hub in (src, dst), f"leaf-leaf link {src}->{dst}"

    @pytest.mark.parametrize("seed", range(4))
    def test_sparse_partitioned_has_two_groups_and_bridges(self, seed):
        scenario = generate_scenario("sparse_partitioned", seed)
        cluster = scenario.cluster
        assert set(cluster.regions()) == {"region-0", "region-1"}
        bridges = [
            (src, dst)
            for (src, dst) in cluster.links
            if COORDINATOR not in (src, dst)
            and cluster.node(src).region != cluster.node(dst).region
        ]
        assert bridges, "partitions must be joined by at least one bridge"

    def test_every_generated_cluster_validates(self):
        for family, seed, size in scenario_matrix(seeds=range(3)):
            generate_scenario(family, seed, size).cluster.validate()

    def test_repro_command_carries_address(self):
        scenario = generate_scenario("star", seed=17)
        command = scenario.repro_command()
        assert "repro.testkit" in command
        assert "star 17" in command
        assert "--size smoke" in command

    def test_matrix_enumerates_family_cross_seeds(self):
        matrix = scenario_matrix(seeds=range(3))
        assert len(matrix) == 3 * len(SCENARIO_FAMILIES)
        assert len(set(matrix)) == len(matrix)


class TestWorkloads:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            make_workload(random.Random(0), "bursty", 10, 10.0)

    @pytest.mark.parametrize("kind", WORKLOAD_KINDS)
    def test_kinds_produce_stamped_traces(self, kind):
        requests = make_workload(random.Random(7), kind, 25, 20.0)
        assert len(requests) == 25
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)
        if kind == "offline":
            assert all(t == 0.0 for t in arrivals)
        else:
            assert arrivals[-1] > 0.0

    @pytest.mark.parametrize("kind", WORKLOAD_KINDS)
    def test_workloads_reproducible_per_rng_seed(self, kind):
        a = make_workload(random.Random(3), kind, 15, 12.0)
        b = make_workload(random.Random(3), kind, 15, 12.0)
        assert a == b


class TestSeedPlumbing:
    """Every stochastic entry point is an explicit function of its seed."""

    def _requests(self):
        return synthesize_azure_trace(AzureTraceConfig(num_requests=30, seed=0))

    def test_poisson_rng_equivalent_to_seed(self):
        requests = self._requests()
        by_seed = poisson_arrivals(requests, rate=2.0, seed=5)
        by_rng = poisson_arrivals(requests, rate=2.0, rng=random.Random(5))
        assert by_seed == by_rng

    def test_diurnal_rng_equivalent_to_seed(self):
        requests = self._requests()
        by_seed = diurnal_arrivals(requests, mean_rate=2.0, seed=5)
        by_rng = diurnal_arrivals(
            requests, mean_rate=2.0, rng=random.Random(5)
        )
        assert by_seed == by_rng

    def test_arrivals_ignore_global_random_state(self):
        requests = self._requests()
        random.seed(1)
        a = poisson_arrivals(requests, rate=3.0, seed=9)
        random.seed(2)
        b = poisson_arrivals(requests, rate=3.0, seed=9)
        assert a == b

    def test_azure_trace_ignores_global_random_state(self):
        random.seed(1)
        a = synthesize_azure_trace(AzureTraceConfig(num_requests=40, seed=8))
        random.seed(2)
        b = synthesize_azure_trace(AzureTraceConfig(num_requests=40, seed=8))
        assert a == b

    def test_azure_trace_accepts_explicit_rng(self):
        config = AzureTraceConfig(num_requests=40, seed=8)
        by_config = synthesize_azure_trace(config)
        by_rng = synthesize_azure_trace(config, rng=random.Random(8))
        assert by_config == by_rng

    def test_random_churn_rng_equivalent_to_seed(self):
        config = ChurnConfig(
            duration=60.0, mean_time_to_failure=10.0,
            mean_time_to_recovery=5.0,
        )
        nodes = ["n0", "n1", "n2"]
        by_seed = random_churn(nodes, config, seed=4)
        by_rng = random_churn(nodes, config, rng=random.Random(4))
        assert by_seed == by_rng

    def test_random_churn_ignores_global_random_state(self):
        config = ChurnConfig(
            duration=60.0, mean_time_to_failure=10.0,
            mean_time_to_recovery=5.0,
        )
        random.seed(1)
        a = random_churn(["n0", "n1"], config, seed=6)
        random.seed(2)
        b = random_churn(["n0", "n1"], config, seed=6)
        assert a == b

    def test_helix_lns_seed_reproducible(self, small_cluster, tiny_model):
        from repro.placement.helix_milp import HelixMilpPlanner

        values = []
        for _ in range(2):
            planner = HelixMilpPlanner(
                small_cluster, tiny_model,
                time_limit=5.0, lns_rounds=2, lns_time_limit=1.0,
                lns_seed=11,
            )
            values.append(planner.plan().max_throughput)
        assert values[0] == values[1]
