"""Tests for the Fig. 9b / Fig. 10b case-study reports."""

import pytest

from repro.bench.casestudy import (
    congestion_report,
    format_utilization,
    utilization_report,
)
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph
from repro.scheduling import HelixScheduler
from repro.sim import Request, Simulation


def run_simulation(cluster, model, placement, num_requests=50):
    flow = FlowGraph(cluster, model, placement).solve()
    scheduler = HelixScheduler(cluster, model, placement, flow=flow)
    sim = Simulation(
        cluster, model, placement, scheduler,
        [Request(f"r{i}", 64, 5) for i in range(num_requests)],
    )
    sim.run()
    return sim


class TestUtilizationReport:
    def test_reports_all_used_nodes(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        sim = run_simulation(small_cluster, tiny_model, placement)
        rows = utilization_report(sim)
        assert {r.node_id for r in rows} == set(placement.used_nodes)
        assert all(0.0 <= r.utilization <= 1.0 for r in rows)
        assert all(r.tokens_processed > 0 for r in rows)

    def test_sorted_ascending_by_utilization(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        sim = run_simulation(small_cluster, tiny_model, placement)
        utils = [r.utilization for r in utilization_report(sim)]
        assert utils == sorted(utils)

    def test_format_renders_every_node(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 8), "l4-0": (0, 8)}
        )
        sim = run_simulation(small_cluster, tiny_model, placement)
        text = format_utilization(utilization_report(sim))
        assert "a100-0" in text and "l4-0" in text


class TestCongestionReport:
    def test_slow_link_root_caused(self, two_region_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-0": (4, 8), "t4-1": (4, 8)}
        )
        sim = run_simulation(two_region_cluster, tiny_model, placement, 80)
        rows = congestion_report(sim)
        assert rows
        top = rows[0]
        # The congested hop originates at the region boundary; its root
        # cause is the sending node, as in the paper's Fig. 10b analysis.
        assert top.root_cause == top.src
        assert top.mean_queueing_delay >= rows[-1].mean_queueing_delay

    def test_min_delay_filter(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 8), "l4-0": (0, 8)}
        )
        sim = run_simulation(small_cluster, tiny_model, placement, 20)
        all_rows = congestion_report(sim, min_delay=0.0)
        filtered = congestion_report(sim, min_delay=1e9)
        assert len(filtered) == 0
        assert len(all_rows) >= 1

    def test_top_limits_rows(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        sim = run_simulation(small_cluster, tiny_model, placement)
        assert len(congestion_report(sim, top=2)) <= 2
