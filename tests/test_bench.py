"""Tests for the bench harness: factories, settings, and static tables."""

import pytest

from repro.bench import (
    format_table,
    make_planner,
    make_scheduler,
    run_offline,
    run_online,
    table1_min_gpus,
    table3_gpu_catalog,
)
from repro.bench.tables import TABLE1_PAPER
from repro.core.errors import ReproError
from repro.placement import PetalsPlanner, SeparatePipelinesPlanner
from repro.scheduling import (
    FixedPipelineScheduler,
    HelixScheduler,
    RandomScheduler,
    ShortestQueueScheduler,
    SwarmScheduler,
)
from repro.sim.request import Request


class TestStaticTables:
    def test_table1_matches_paper_exactly(self):
        for row in table1_min_gpus():
            model = row["model"]
            for gpu in ("L4", "A100-40G", "H100"):
                assert row[gpu] == TABLE1_PAPER[(model, gpu)], (model, gpu)

    def test_table3_rows(self):
        rows = table3_gpu_catalog()
        assert [r["gpu"] for r in rows] == ["H100", "A100-40G", "L4", "T4"]
        h100 = rows[0]
        assert h100["fp16_tflops"] == 1979
        assert h100["memory_gb"] == 80
        assert h100["bandwidth_gbs"] == 3350

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["yyy", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")
        assert "2.50" in lines[3]


class TestFactories:
    def test_make_planner_names(self, small_cluster, tiny_model):
        assert isinstance(
            make_planner("petals", small_cluster, tiny_model), PetalsPlanner
        )
        sp_plus = make_planner("sp+", small_cluster, tiny_model)
        assert isinstance(sp_plus, SeparatePipelinesPlanner)
        assert sp_plus.include_mixed_pipeline

    def test_make_planner_unknown(self, small_cluster, tiny_model):
        with pytest.raises(ReproError, match="unknown placement"):
            make_planner("alpa", small_cluster, tiny_model)

    def test_make_scheduler_all_names(self, small_cluster, tiny_model):
        planner_result = make_planner("petals", small_cluster, tiny_model).plan()
        expectations = {
            "helix": HelixScheduler,
            "swarm": SwarmScheduler,
            "random": RandomScheduler,
            "shortest-queue": ShortestQueueScheduler,
        }
        for name, cls in expectations.items():
            scheduler = make_scheduler(
                name, small_cluster, tiny_model, planner_result
            )
            assert isinstance(scheduler, cls)

    def test_fixed_scheduler_requires_pipelines(self, small_cluster, tiny_model):
        planner_result = make_planner("petals", small_cluster, tiny_model).plan()
        with pytest.raises(ReproError, match="pipelines"):
            make_scheduler("fixed", small_cluster, tiny_model, planner_result)
        sp_result = make_planner("sp", small_cluster, tiny_model).plan()
        scheduler = make_scheduler("fixed", small_cluster, tiny_model, sp_result)
        assert isinstance(scheduler, FixedPipelineScheduler)

    def test_make_scheduler_unknown(self, small_cluster, tiny_model):
        planner_result = make_planner("petals", small_cluster, tiny_model).plan()
        with pytest.raises(ReproError, match="unknown scheduler"):
            make_scheduler("fifo", small_cluster, tiny_model, planner_result)


class TestServingRuns:
    def _trace(self, n=30):
        return [Request(f"r{i}", 32, 4) for i in range(n)]

    def test_offline_run(self, small_cluster, tiny_model):
        planner_result = make_planner("petals", small_cluster, tiny_model).plan()
        result = run_offline(
            small_cluster, tiny_model, planner_result, "helix", self._trace(),
            max_time=500.0, warmup=0.0, placement_method="petals",
        )
        assert result.setting == "offline"
        assert result.metrics.requests_finished == 30
        assert result.metrics.decode_throughput > 0

    def test_online_run_paces_arrivals(self, small_cluster, tiny_model):
        planner_result = make_planner("petals", small_cluster, tiny_model).plan()
        result = run_online(
            small_cluster, tiny_model, planner_result, "helix", self._trace(60),
            max_time=2000.0, warmup=0.0, utilization=0.5,
        )
        assert result.setting == "online"
        assert result.metrics.requests_finished == 60
        # Online prompt latency should be far below a flooded offline run.
        assert result.metrics.prompt_latency.p50 < 5.0

    def test_offline_vs_online_latency_ordering(self, small_cluster, tiny_model):
        planner_result = make_planner("petals", small_cluster, tiny_model).plan()
        trace = self._trace(80)
        offline = run_offline(
            small_cluster, tiny_model, planner_result, "helix", trace,
            max_time=2000.0, warmup=0.0,
        )
        online = run_online(
            small_cluster, tiny_model, planner_result, "helix", trace,
            max_time=4000.0, warmup=0.0, utilization=0.4,
        )
        assert (
            online.metrics.prompt_latency.mean
            <= offline.metrics.prompt_latency.mean
        )
