"""Tests for simulator components: links, executors, KV pools, metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cluster import ComputeNode, Profiler, T4
from repro.cluster.network import Link
from repro.sim import KVCachePool, LinkChannel, NodeExecutor, Request, StageWork
from repro.sim.metrics import LatencyStats, RequestRecord, aggregate_metrics


class TestLinkChannel:
    def test_idle_link_immediate_start(self):
        channel = LinkChannel(Link("a", "b", bandwidth=1000.0, latency=0.1))
        arrival = channel.transmit(now=0.0, num_bytes=500)
        assert arrival == pytest.approx(0.5 + 0.1)

    def test_fifo_queueing(self):
        channel = LinkChannel(Link("a", "b", bandwidth=1000.0, latency=0.0))
        first = channel.transmit(0.0, 1000)   # occupies [0, 1]
        second = channel.transmit(0.0, 1000)  # waits until 1, arrives at 2
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)
        assert channel.total_queueing_delay == pytest.approx(1.0)
        assert channel.max_queueing_delay == pytest.approx(1.0)

    def test_no_queueing_when_spaced(self):
        channel = LinkChannel(Link("a", "b", bandwidth=1000.0, latency=0.0))
        channel.transmit(0.0, 100)
        channel.transmit(5.0, 100)
        assert channel.mean_queueing_delay == 0.0

    def test_stats_accumulate(self):
        channel = LinkChannel(Link("a", "b", bandwidth=1e6))
        channel.transmit(0.0, 100)
        channel.transmit(0.0, 200)
        assert channel.bytes_sent == 300
        assert channel.messages_sent == 2

    def test_negative_size_rejected(self):
        channel = LinkChannel(Link("a", "b", bandwidth=1e6))
        with pytest.raises(ValueError):
            channel.transmit(0.0, -1)

    @given(
        sizes=st.lists(st.floats(min_value=1, max_value=1e6), min_size=1, max_size=20)
    )
    def test_link_never_exceeds_bandwidth(self, sizes):
        bandwidth = 1e5
        channel = LinkChannel(Link("a", "b", bandwidth=bandwidth, latency=0.0))
        last_arrival = 0.0
        for size in sizes:
            last_arrival = channel.transmit(0.0, size)
        # Total bytes / total busy time == bandwidth exactly (no latency).
        assert last_arrival == pytest.approx(sum(sizes) / bandwidth)


class TestNodeExecutor:
    def _executor(self, tiny_model, cap=None):
        node = ComputeNode("t4", T4)
        return NodeExecutor(node, tiny_model, Profiler(), 4, max_batch_tokens=cap)

    def test_take_batch_drains_queue(self, tiny_model):
        ex = self._executor(tiny_model)
        for i in range(3):
            ex.enqueue(StageWork(f"r{i}", 0, 10, 4, True))
        batch = ex.take_batch()
        assert len(batch) == 3
        assert not ex.has_work()

    def test_batch_cap_respected(self, tiny_model):
        ex = self._executor(tiny_model, cap=25)
        for i in range(3):
            ex.enqueue(StageWork(f"r{i}", 0, 10, 4, True))
        batch = ex.take_batch()
        assert len(batch) == 2  # 10 + 10 fits, third would exceed 25
        assert len(ex.queue) == 1

    def test_single_oversize_item_still_runs(self, tiny_model):
        ex = self._executor(tiny_model, cap=5)
        ex.enqueue(StageWork("big", 0, 100, 4, True))
        assert len(ex.take_batch()) == 1

    def test_batch_time_increases_with_work(self, tiny_model):
        ex = self._executor(tiny_model)
        small = [StageWork("a", 0, 1, 4, False)]
        large = [StageWork("a", 0, 512, 4, True)]
        assert ex.batch_time(large) > ex.batch_time(small)

    def test_batch_amortizes_weight_read(self, tiny_model):
        # Two tokens in one batch beat two single-token batches.
        ex = self._executor(tiny_model)
        one = ex.batch_time([StageWork("a", 0, 1, 4, False)])
        two = ex.batch_time(
            [StageWork("a", 0, 1, 4, False), StageWork("b", 0, 1, 4, False)]
        )
        assert two < 2 * one

    def test_stats_recorded(self, tiny_model):
        ex = self._executor(tiny_model)
        batch = [StageWork("a", 0, 10, 4, True)]
        ex.record_batch(batch, 0.5)
        assert ex.stats.batches == 1
        assert ex.stats.tokens == 10
        assert ex.utilization(1.0) == pytest.approx(0.5)

    def test_rejects_zero_layers(self, tiny_model):
        with pytest.raises(ValueError, match="resident"):
            NodeExecutor(ComputeNode("t4", T4), tiny_model, Profiler(), 0)


class TestKVCachePool:
    def test_allocate_and_free(self):
        pool = KVCachePool("n", capacity_tokens=100)
        assert pool.allocate(60)
        assert pool.used_tokens == 60
        pool.free(30)
        assert pool.used_tokens == 30

    def test_overflow_counted_not_fatal(self):
        pool = KVCachePool("n", capacity_tokens=100)
        assert pool.allocate(90)
        assert not pool.allocate(20)
        assert pool.overflow_events == 1
        assert pool.used_tokens == 110
        assert pool.utilization > 1.0

    def test_peak_tracking(self):
        pool = KVCachePool("n", capacity_tokens=100)
        pool.allocate(80)
        pool.free(50)
        pool.allocate(10)
        assert pool.peak_tokens == 80

    def test_free_clamps(self):
        pool = KVCachePool("n", capacity_tokens=100)
        pool.free(10)
        assert pool.used_tokens == 0

    def test_negative_amounts_rejected(self):
        pool = KVCachePool("n", capacity_tokens=10)
        with pytest.raises(ValueError):
            pool.allocate(-1)
        with pytest.raises(ValueError):
            pool.free(-1)


class TestMetrics:
    def test_latency_stats_percentiles(self):
        stats = LatencyStats.from_samples(list(map(float, range(1, 101))))
        assert stats.count == 100
        assert stats.p50 == pytest.approx(50.5)
        assert stats.p5 == pytest.approx(5.95)
        assert stats.p95 == pytest.approx(95.05)
        assert stats.mean == pytest.approx(50.5)

    def test_latency_stats_empty(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert math.isnan(stats.mean)

    def test_latency_stats_ignores_nan(self):
        stats = LatencyStats.from_samples([1.0, float("nan"), 3.0])
        assert stats.count == 2
        assert stats.mean == pytest.approx(2.0)

    def test_latency_stats_counts_dropped_nan_samples(self):
        # NaN samples (lost / unfinished requests) are excluded from the
        # distribution but not silently forgotten.
        stats = LatencyStats.from_samples([1.0, float("nan"), 3.0])
        assert stats.nan_count == 1
        all_nan = LatencyStats.from_samples([float("nan")] * 3)
        assert all_nan.count == 0
        assert all_nan.nan_count == 3
        assert math.isnan(all_nan.mean)
        assert LatencyStats.from_samples([1.0, 2.0]).nan_count == 0

    def test_request_record_latencies(self):
        record = RequestRecord("r", 10, 3, arrival_time=1.0)
        record.first_token_time = 2.0
        record.token_times = [2.0, 2.5, 3.5]
        record.finish_time = 3.5
        assert record.prompt_latency == pytest.approx(1.0)
        assert record.decode_latency == pytest.approx(0.75)
        assert record.finished

    def test_decode_latency_needs_two_tokens(self):
        record = RequestRecord("r", 10, 1, arrival_time=0.0)
        record.token_times = [1.0]
        assert math.isnan(record.decode_latency)

    def test_aggregate_counts_decode_tokens_in_window(self):
        record = RequestRecord("r", 10, 4, arrival_time=0.0)
        record.first_token_time = 1.0
        record.token_times = [1.0, 2.0, 3.0, 11.0]
        record.finish_time = 11.0
        metrics = aggregate_metrics(
            [record], warmup=0.0, end_time=10.0,
            kv_overflow_events=0, pipeline_depths=[2],
        )
        # Tokens at 2.0 and 3.0 are decode tokens inside [0, 10]; the first
        # token (1.0) is the prompt token and 11.0 is outside the window.
        assert metrics.decode_tokens == 2
        assert metrics.decode_throughput == pytest.approx(0.2)

    def test_aggregate_rejects_empty_window(self):
        with pytest.raises(ValueError, match="window"):
            aggregate_metrics([], warmup=5.0, end_time=5.0,
                              kv_overflow_events=0, pipeline_depths=[])

    def test_summary_renders(self):
        record = RequestRecord("r", 10, 2, arrival_time=0.0)
        record.first_token_time = 1.0
        record.token_times = [1.0, 2.0]
        record.finish_time = 2.0
        metrics = aggregate_metrics(
            [record], warmup=0.0, end_time=4.0,
            kv_overflow_events=0, pipeline_depths=[1],
        )
        assert "decode" in metrics.summary()

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request("r", 0, 5)
        with pytest.raises(ValueError):
            Request("r", 5, 0)
        with pytest.raises(ValueError):
            Request("r", 5, 5, arrival_time=-1.0)
        assert Request("r", 5, 5).total_tokens == 10
