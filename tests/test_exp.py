"""Tests for the experiment orchestration harness (:mod:`repro.exp`).

The properties the perf trajectory depends on:

* manifests are deterministic and content hashes are order-independent;
* a killed sweep resumes — only missing cells execute, and the final
  aggregate is byte-identical to an uninterrupted serial run;
* worker count never changes results — ``--workers 1`` and
  ``--workers 8`` produce identical per-run fingerprints on a
  12-address mini-grid;
* a crashing cell becomes a ``sweep_crash`` record instead of killing
  the pool, and the aggregate counts it as a failure;
* the store's derived artifacts (runs.csv, index.json, machine stamp)
  are present and well-formed.
"""

from __future__ import annotations

import json

import pytest

from repro.exp import (
    CELL_KINDS,
    ExperimentSpec,
    RunCell,
    RunStore,
    get_experiment,
    run_experiment,
)
from repro.exp.experiments import scenario_sweep
from repro.exp.spec import _canonical

#: The 12-address mini-grid: 4 classic families x 3 seeds at smoke size.
MINI = scenario_sweep(seeds=3, size="smoke")


def _crashing_cell(params: dict) -> dict:
    raise RuntimeError("cell exploded")


def _marker_cell(params: dict) -> dict:
    return {"ok": True, "marker": params["marker"]}


class TestSpec:
    def test_manifest_is_deterministic(self):
        first = MINI.manifest()
        second = scenario_sweep(seeds=3, size="smoke").manifest()
        assert first == second
        assert first["total_cells"] == 12

    def test_grid_expands_in_declaration_order(self):
        cells = MINI.cells()
        params = [c.params_dict for c in cells]
        assert params[0]["family"] == "full_mesh"
        assert [p["seed"] for p in params[:3]] == [0, 1, 2]
        # Families iterate slower than seeds (axis declaration order).
        assert params[3]["family"] == "geo_regions"

    def test_cell_hash_is_param_order_independent(self):
        a = RunCell.make("verify", {"family": "star", "seed": 1, "size": "smoke"})
        b = RunCell.make("verify", {"size": "smoke", "seed": 1, "family": "star"})
        assert a.cell_hash == b.cell_hash

    def test_cell_hash_distinguishes_params_and_kind(self):
        base = RunCell.make("verify", {"family": "star", "seed": 1})
        other_seed = RunCell.make("verify", {"family": "star", "seed": 2})
        other_kind = RunCell.make("policy_eval", {"family": "star", "seed": 1})
        assert len({base.cell_hash, other_seed.cell_hash, other_kind.cell_hash}) == 3

    def test_canonical_rejects_non_json_params(self):
        with pytest.raises(TypeError):
            RunCell.make("verify", {"fn": object()})

    def test_every_registered_experiment_expands(self):
        from repro.exp.experiments import EXPERIMENTS

        for name in EXPERIMENTS:
            spec = get_experiment(name)
            manifest = spec.manifest()
            assert manifest["total_cells"] >= 1
            assert spec.kind in CELL_KINDS or not spec.grid
            for entry in manifest["cells"]:
                assert entry["kind"] in CELL_KINDS

    def test_gridless_spec_has_only_extra_cells(self):
        spec = get_experiment("bench-flow")
        cells = spec.cells()
        assert len(cells) == 1
        assert cells[0].params_dict == {"suite": "flow", "smoke": False}

    def test_get_experiment_applies_known_overrides_only(self):
        spec = get_experiment("chaos-sweep", seeds=2, diurnal_tier="small")
        assert len(spec.cells()) == 2
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("no-such-experiment")


class TestResume:
    def test_interrupted_run_resumes_and_matches_serial(self, tmp_path):
        """Kill-resume semantics: byte-identical aggregate, no redone cells."""
        serial_root = tmp_path / "serial"
        resumed_root = tmp_path / "resumed"

        uninterrupted = run_experiment(
            MINI, workers=1, results_root=serial_root, quiet=True
        )
        assert uninterrupted.executed == 12
        assert uninterrupted.failures == 0

        # Simulate a mid-run kill: a complete pass, then lose 5 records.
        run_experiment(MINI, workers=1, results_root=resumed_root, quiet=True)
        store = RunStore(resumed_root, MINI.name)
        victims = sorted(store.completed_hashes())[:5]
        for cell_hash in victims:
            store.run_path(cell_hash).unlink()

        resumed = run_experiment(
            MINI, workers=1, results_root=resumed_root, quiet=True
        )
        assert resumed.executed == 5
        assert resumed.skipped == 7

        serial_bytes = (
            serial_root / MINI.name / "aggregate.json"
        ).read_bytes()
        resumed_bytes = (
            resumed_root / MINI.name / "aggregate.json"
        ).read_bytes()
        assert serial_bytes == resumed_bytes

    def test_completed_run_is_a_noop(self, tmp_path):
        run_experiment(MINI, workers=1, results_root=tmp_path, quiet=True)
        again = run_experiment(
            MINI, workers=1, results_root=tmp_path, quiet=True
        )
        assert again.executed == 0
        assert again.skipped == 12

    def test_force_reexecutes_everything(self, tmp_path):
        run_experiment(MINI, workers=1, results_root=tmp_path, quiet=True)
        forced = run_experiment(
            MINI, workers=1, results_root=tmp_path, quiet=True, force=True
        )
        assert forced.executed == 12


class TestParallelDeterminism:
    def test_workers_1_vs_8_identical_fingerprints(self, tmp_path):
        """The satellite's contract: worker count never changes results."""
        serial = run_experiment(
            MINI, workers=1, results_root=tmp_path / "w1", quiet=True
        )
        parallel = run_experiment(
            MINI, workers=8, results_root=tmp_path / "w8", quiet=True
        )
        assert serial.failures == 0
        assert parallel.failures == 0

        manifest = MINI.manifest()
        fp1 = {
            r["hash"]: r["fingerprint"]
            for r in RunStore(tmp_path / "w1", MINI.name).read_records(manifest)
        }
        fp8 = {
            r["hash"]: r["fingerprint"]
            for r in RunStore(tmp_path / "w8", MINI.name).read_records(manifest)
        }
        assert len(fp1) == 12
        assert fp1 == fp8
        assert all(fp1.values())  # every cell produced a real fingerprint

        # And the aggregates agree modulo the recorded worker count.
        a1 = {**serial.aggregate, "machine": None}
        a8 = {**parallel.aggregate, "machine": None}
        assert a1 == a8


class TestFailureHandling:
    def test_crashing_cell_becomes_failed_record(self, tmp_path, monkeypatch):
        monkeypatch.setitem(CELL_KINDS, "boom", _crashing_cell)
        spec = ExperimentSpec.make(
            name="boom-test",
            description="crash handling",
            kind="boom",
            grid={"marker": [1, 2]},
        )
        report = run_experiment(
            spec, workers=1, results_root=tmp_path, quiet=True
        )
        assert report.failures == 2
        assert report.aggregate["failures"] == 2
        record = RunStore(tmp_path, "boom-test").read_records(spec.manifest())[0]
        assert record["ok"] is False
        assert "cell exploded" in record["violations"][0]["detail"]

    def test_sweep_crash_inside_verify_cell(self):
        record = CELL_KINDS["verify"](
            {"family": "no_such_family", "seed": 0, "size": "smoke"}
        )
        assert record["ok"] is False
        assert record["violations"][0]["invariant"] == "sweep_crash"


class TestStoreArtifacts:
    def test_csv_index_and_machine_stamp(self, tmp_path, monkeypatch):
        monkeypatch.setitem(CELL_KINDS, "marker", _marker_cell)
        spec = ExperimentSpec.make(
            name="marker-test",
            description="store artifacts",
            kind="marker",
            grid={"marker": ["a", "b", "c"]},
        )
        report = run_experiment(
            spec, workers=1, results_root=tmp_path, quiet=True
        )
        exp_dir = tmp_path / "marker-test"

        csv_text = (exp_dir / "runs.csv").read_text().splitlines()
        assert csv_text[0].startswith("hash,kind,")
        assert len(csv_text) == 4  # header + 3 records

        index = json.loads((tmp_path / "index.json").read_text())
        entry = index["experiments"]["marker-test"]
        assert entry["total_cells"] == 3
        assert entry["completed_cells"] == 3
        assert entry["aggregate"] == "marker-test/aggregate.json"

        machine = report.aggregate["machine"]
        assert machine["cpu_count"] >= 1
        assert machine["workers"] == 1
        assert machine["python"].count(".") == 2
        assert machine["cpu_model"]

    def test_perftracker_carries_machine_stamp(self):
        from repro.bench.perftrack import PerfTracker

        doc = PerfTracker(label="stamp-test").to_dict()
        assert doc["machine"]["cpu_count"] >= 1
        assert doc["machine"]["cpu_model"]

    def test_canonical_normalizes_tuples(self):
        assert _canonical((1, 2)) == [1, 2]
        assert _canonical({"b": (1,), "a": None}) == {"b": [1], "a": None}


class TestPolicyCells:
    def test_policy_eval_reuses_plan_and_records_scheduler(self):
        from repro.exp.cells import _PLAN_CACHE, policy_eval_cell

        _PLAN_CACHE.clear()
        first = policy_eval_cell({
            "family": "full_mesh", "seed": 0, "size": "smoke",
            "scheduler": "helix",
        })
        assert first["ok"], first.get("violations")
        assert first["scheduler"] == "helix"
        assert ("full_mesh", 0, "smoke") in _PLAN_CACHE

        second = policy_eval_cell({
            "family": "full_mesh", "seed": 0, "size": "smoke",
            "scheduler": "random",
        })
        assert second["ok"], second.get("violations")
        # Same address, same planner decision — only the policy differs.
        assert second["planner"] == first["planner"]


class TestCLI:
    def test_run_list_and_exit_codes(self, tmp_path, capsys):
        from repro.exp.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "scenario-sweep" in out

        code = main([
            "run", "chaos-sweep", "--seeds", "1", "--size", "smoke",
            "--results-dir", str(tmp_path), "--quiet",
            "--headline-out", str(tmp_path / "BENCH_chaos.json"),
        ])
        assert code == 0
        headline = json.loads((tmp_path / "BENCH_chaos.json").read_text())
        assert headline["bench"] == "chaos_sweep"
        assert set(headline) == {"bench", "size", "seeds", "derived", "machine"}

    def test_headline_out_rejected_without_headline(self, tmp_path, capsys):
        from repro.exp.__main__ import main

        code = main([
            "run", "scenario-sweep", "--seeds", "1", "--size", "smoke",
            "--families", "full_mesh",
            "--results-dir", str(tmp_path), "--quiet",
            "--headline-out", str(tmp_path / "nope.json"),
        ])
        assert code == 2
