"""Tests for the synthetic Azure trace and arrival processes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.request import Request
from repro.trace import (
    AzureTraceConfig,
    diurnal_arrivals,
    offline_arrivals,
    poisson_arrivals,
    rate_for_utilization,
    synthesize_azure_trace,
    trace_statistics,
)
from repro.trace.azure import AZURE_MAX_INPUT, AZURE_MAX_OUTPUT


class TestAzureTrace:
    def test_means_match_published_statistics(self):
        trace = synthesize_azure_trace(AzureTraceConfig(num_requests=16657, seed=0))
        stats = trace_statistics(trace)
        # Published: mean input 763, mean output 232 (within 5%).
        assert stats["mean_input"] == pytest.approx(763, rel=0.05)
        assert stats["mean_output"] == pytest.approx(232, rel=0.05)

    def test_caps_enforced(self):
        trace = synthesize_azure_trace(AzureTraceConfig(num_requests=5000, seed=1))
        assert max(r.input_len for r in trace) <= AZURE_MAX_INPUT
        assert max(r.output_len for r in trace) <= AZURE_MAX_OUTPUT
        assert min(r.input_len for r in trace) >= 1
        assert min(r.output_len for r in trace) >= 1

    def test_right_skew(self):
        trace = synthesize_azure_trace(AzureTraceConfig(num_requests=5000, seed=2))
        stats = trace_statistics(trace)
        # Fig. 5a: distributions are right-skewed, so median < mean.
        assert stats["p50_input"] < stats["mean_input"]
        assert stats["p50_output"] < stats["mean_output"]

    def test_deterministic_by_seed(self):
        a = synthesize_azure_trace(AzureTraceConfig(num_requests=100, seed=42))
        b = synthesize_azure_trace(AzureTraceConfig(num_requests=100, seed=42))
        assert [(r.input_len, r.output_len) for r in a] == [
            (r.input_len, r.output_len) for r in b
        ]

    def test_scale_shrinks_lengths(self):
        full = synthesize_azure_trace(AzureTraceConfig(num_requests=2000, seed=3))
        quarter = synthesize_azure_trace(
            AzureTraceConfig(num_requests=2000, seed=3, scale=0.25)
        )
        full_stats = trace_statistics(full)
        quarter_stats = trace_statistics(quarter)
        ratio = quarter_stats["mean_input"] / full_stats["mean_input"]
        assert 0.2 < ratio < 0.3

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            AzureTraceConfig(num_requests=0)
        with pytest.raises(ValueError):
            AzureTraceConfig(scale=0.0)
        with pytest.raises(ValueError):
            AzureTraceConfig(scale=1.5)


class TestArrivals:
    def _trace(self, n=50):
        return [Request(f"r{i}", 10, 5, arrival_time=99.0) for i in range(n)]

    def test_offline_resets_to_zero(self):
        stamped = offline_arrivals(self._trace())
        assert all(r.arrival_time == 0.0 for r in stamped)

    def test_poisson_monotone_arrivals(self):
        stamped = poisson_arrivals(self._trace(), rate=2.0, seed=0)
        times = [r.arrival_time for r in stamped]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_poisson_rate_approximately_respected(self):
        stamped = poisson_arrivals(self._trace(2000), rate=4.0, seed=1)
        duration = stamped[-1].arrival_time
        empirical = 2000 / duration
        assert empirical == pytest.approx(4.0, rel=0.1)

    def test_poisson_invalid_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals(self._trace(), rate=0.0)

    def test_diurnal_monotone_and_rate(self):
        # Short period -> the trace spans many cycles, so the empirical
        # rate averages out to the configured mean.
        stamped = diurnal_arrivals(
            self._trace(3000), mean_rate=5.0, seed=2, period=30.0
        )
        times = [r.arrival_time for r in stamped]
        assert all(a < b for a, b in zip(times, times[1:]))
        empirical = 3000 / times[-1]
        assert empirical == pytest.approx(5.0, rel=0.1)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            diurnal_arrivals(self._trace(), mean_rate=-1)
        with pytest.raises(ValueError):
            diurnal_arrivals(self._trace(), mean_rate=1, amplitude=1.5)

    def test_rate_for_utilization(self):
        requests = [Request("a", 700, 300), Request("b", 300, 700)]
        # mean total tokens = 1000; peak 2000 tok/s at 75% -> 1.5 req/s.
        rate = rate_for_utilization(2000.0, requests, utilization=0.75)
        assert rate == pytest.approx(1.5)

    def test_rate_for_utilization_validation(self):
        requests = [Request("a", 10, 10)]
        with pytest.raises(ValueError):
            rate_for_utilization(0.0, requests)
        with pytest.raises(ValueError):
            rate_for_utilization(100.0, requests, utilization=0.0)

    @settings(max_examples=20, deadline=None)
    @given(rate=st.floats(min_value=0.5, max_value=50))
    def test_poisson_preserves_request_payload(self, rate):
        trace = self._trace(20)
        stamped = poisson_arrivals(trace, rate=rate, seed=5)
        assert [(r.request_id, r.input_len, r.output_len) for r in stamped] == [
            (r.request_id, r.input_len, r.output_len) for r in trace
        ]


class TestDegenerateInputs:
    """Empty traces and degenerate rates fail with clear ValueErrors."""

    def test_trace_statistics_empty_trace(self):
        with pytest.raises(ValueError, match="empty trace"):
            trace_statistics([])

    def test_rate_for_utilization_empty_trace(self):
        with pytest.raises(ValueError, match="empty trace"):
            rate_for_utilization(1000.0, [])

    def test_rate_for_utilization_nonfinite_peak(self):
        requests = [Request("a", 10, 10)]
        with pytest.raises(ValueError, match="positive and finite"):
            rate_for_utilization(float("inf"), requests)
        with pytest.raises(ValueError, match="positive and finite"):
            rate_for_utilization(float("nan"), requests)
        with pytest.raises(ValueError, match="positive and finite"):
            rate_for_utilization(-5.0, requests)

    def test_poisson_empty_trace(self):
        with pytest.raises(ValueError, match="empty request list"):
            poisson_arrivals([], rate=1.0)

    def test_poisson_nonfinite_rate(self):
        trace = [Request("a", 10, 10)]
        with pytest.raises(ValueError, match="positive and finite"):
            poisson_arrivals(trace, rate=float("inf"))
        with pytest.raises(ValueError, match="positive and finite"):
            poisson_arrivals(trace, rate=float("nan"))

    def test_diurnal_empty_trace(self):
        with pytest.raises(ValueError, match="empty request list"):
            diurnal_arrivals([], mean_rate=1.0)

    def test_diurnal_nonfinite_rate(self):
        trace = [Request("a", 10, 10)]
        with pytest.raises(ValueError, match="positive and finite"):
            diurnal_arrivals(trace, mean_rate=float("nan"))
