"""Multi-tenancy suite: registry, fairness, admission, arbitration.

The acceptance criteria of the tenancy PR, as tier-1 smoke tests:

* tenancy off (the default) leaves the engine untouched — and a
  *single-tenant* tenancy config is bit-identical to no config at all
  (same token timeline on the same trace);
* a registered tenant that sends no traffic accrues exactly zero
  fairness debt and never trips the starvation watchdog;
* the no-starvation invariant is real: a priority-only selector starves
  the low-priority tenant under sustained high-priority load (the
  watchdog fires), while the deficit selector serves both;
* admission control sheds lowest-priority traffic first and the
  per-priority shed split always sums to the global counter;
* the ``tenant`` scenario family passes every invariant (determinism,
  differential oracles, live per-tenant KV accounting) on several seeds;
* :meth:`HelixMilpPlanner.plan_tenants` splits cluster throughput across
  tenants with shared base weights counted once.
"""

import math

import pytest

from repro.cluster import small_cluster_fig12
from repro.flow.graph import FlowGraph
from repro.models.specs import LLAMA_30B
from repro.placement import HelixMilpPlanner
from repro.scheduling import HelixScheduler
from repro.sim import Request, Simulation, aggregate_tenant_metrics
from repro.sim.metrics import RequestRecord
from repro.tenancy import (
    BATCH,
    INTERACTIVE,
    STANDARD,
    AdmissionConfig,
    FairnessConfig,
    SLOClass,
    TenancyConfig,
    TenantManager,
    TenantRegistry,
    TenantSpec,
    jain_index,
)
from repro.tenancy.fairness import WindowedFairnessTracker
from repro.testkit import assert_scenario_ok, check_tenancy, verify_scenario


def make_simulation(cluster, model, placement, requests, **kwargs):
    flow = FlowGraph(cluster, model, placement).solve()
    scheduler = HelixScheduler(cluster, model, placement, flow=flow)
    return Simulation(cluster, model, placement, scheduler, requests, **kwargs)


def trace(n, spacing, tenant_id="", start=0.0, input_len=32, output_len=8):
    return [
        Request(
            f"{tenant_id or 'r'}:{i}",
            input_len,
            output_len,
            arrival_time=start + i * spacing,
            tenant_id=tenant_id,
        )
        for i in range(n)
    ]


def merged(*traces):
    out = [r for t in traces for r in t]
    out.sort(key=lambda r: (r.arrival_time, r.request_id))
    return out


@pytest.fixture()
def placement8():
    from repro.core.placement_types import ModelPlacement

    return ModelPlacement.from_intervals(
        8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
    )


# ----------------------------------------------------------------------
# Registry & SLO classes
# ----------------------------------------------------------------------
class TestRegistry:
    def test_slo_class_validation(self):
        with pytest.raises(ValueError):
            SLOClass("bad", ttft_target=0.0, tbt_target=1.0)
        with pytest.raises(ValueError):
            SLOClass("bad", ttft_target=1.0, tbt_target=1.0, percentile=1.5)

    def test_registry_is_sorted_and_shares_normalize(self):
        registry = TenantRegistry([
            TenantSpec("zeta", rate_share=3.0),
            TenantSpec("alpha", rate_share=1.0),
        ])
        assert registry.ids == ("alpha", "zeta")
        shares = registry.shares()
        assert shares["zeta"] == pytest.approx(0.75)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_duplicate_tenant_rejected(self):
        with pytest.raises(ValueError):
            TenantRegistry([TenantSpec("a"), TenantSpec("a")])

    def test_presets_cover_the_latency_spectrum(self):
        assert INTERACTIVE.ttft_target < STANDARD.ttft_target < BATCH.ttft_target


# ----------------------------------------------------------------------
# Fairness tracker & Jain index
# ----------------------------------------------------------------------
class TestFairness:
    def test_jain_index_extremes(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        # One tenant hogging everything: index collapses toward 1/n.
        assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
        assert jain_index([]) == 1.0

    def test_jain_index_all_zero_idle_vs_starved(self):
        # All-zero service is ambiguous: an idle system is vacuously
        # fair, a backlogged one is maximally unfair. ``any_demand``
        # disambiguates — this is what keeps the starvation-watchdog
        # contrast honest (the priority-only control must not score 1.0
        # while a tenant starves with queued work).
        assert jain_index([0.0, 0.0]) == 1.0
        assert jain_index([0.0, 0.0], any_demand=True) == pytest.approx(0.5)
        assert jain_index([0.0] * 4, any_demand=True) == pytest.approx(0.25)

    def test_tracker_fairness_index_starved_backlog_scores_minimum(self):
        config = FairnessConfig(mode="W", window=1.0, backlog_windows=4)
        tracker = WindowedFairnessTracker(config, {"a": 0.5, "b": 0.5})
        # Nothing served, nothing queued: vacuously fair.
        assert tracker.fairness_index(5.0) == 1.0
        # Nothing served with both tenants backlogged: total starvation.
        assert tracker.fairness_index(5.0, backlogged=("a", "b")) == (
            pytest.approx(0.5)
        )
        # One tenant served, the other starved with queued demand: the
        # starved tenant participates with ratio 0 instead of vanishing.
        tracker.note("a", 4.5, 10.0)
        starved = tracker.fairness_index(5.0, backlogged=("b",))
        assert starved == pytest.approx(0.5)

    def test_window_accounting_and_span_split(self):
        config = FairnessConfig(mode="T", window=1.0, backlog_windows=2)
        tracker = WindowedFairnessTracker(config, {"a": 0.5, "b": 0.5})
        # A span crossing a window boundary splits across both windows.
        tracker.note_span("a", 0.5, 1.5)
        service = tracker.service_in_backlog(1.5)
        assert service["a"] == pytest.approx(1.0)
        # Beyond the backlog horizon the early half ages out.
        service = tracker.service_in_backlog(2.5)
        assert service["a"] == pytest.approx(0.5)

    def test_zero_demand_tenant_has_zero_debt(self):
        """A registered-but-idle tenant must not accrue fairness debt."""
        config = FairnessConfig(mode="W", window=1.0, backlog_windows=4)
        shares = {"busy": 0.5, "idle": 0.5}
        manager = TenantManager(TenancyConfig(
            registry=TenantRegistry([
                TenantSpec("busy"), TenantSpec("idle"),
            ]),
            fairness=config,
        ))
        for i in range(20):
            manager.note_token("busy", 0.1 * i)
        # Entitlement renormalizes over *active* tenants: with only one
        # active tenant there is no debt anywhere.
        deficits = manager._deficits_now(["busy"], 2.0)
        assert deficits["idle"] == 0.0
        assert deficits["busy"] == pytest.approx(0.0)
        assert manager.starvation_events == []


# ----------------------------------------------------------------------
# Engine gating: off by default, single tenant bit-identical
# ----------------------------------------------------------------------
class TestGating:
    def test_tenancy_off_by_default(self, small_cluster, tiny_model, placement8):
        sim = make_simulation(
            small_cluster, tiny_model, placement8, trace(5, 0.1),
            max_time=30.0, seed=0,
        )
        assert sim.tenancy is None
        sim.run()
        assert sim.kv_usage_by_tenant() == {}

    def test_single_tenant_is_bit_identical(
        self, small_cluster, tiny_model, placement8
    ):
        """The degenerate one-tenant config must not perturb the engine:
        same requests, same seed => the exact same token timeline."""
        requests = trace(40, 0.1, tenant_id="solo")
        off = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0,
        )
        metrics_off = off.run()
        on = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0,
            tenancy=TenancyConfig(TenantRegistry([TenantSpec("solo")])),
        )
        metrics_on = on.run()
        assert on.token_timeline == off.token_timeline
        assert metrics_on.requests_finished == metrics_off.requests_finished
        assert metrics_on.decode_throughput == metrics_off.decode_throughput
        assert on.tenancy.tokens_by_tenant["solo"] == on.tokens_emitted
        violations = check_tenancy(on, metrics_on)
        assert not violations, "\n".join(str(v) for v in violations)


# ----------------------------------------------------------------------
# Starvation: the invariant catches an unfair scheduler
# ----------------------------------------------------------------------
def _contended_run(small_cluster, tiny_model, placement8, selector):
    """Sustained high-priority flood + a trickle of low-priority work.

    The scheduler's expected-output KV charge is inflated so only a few
    requests fit concurrently; arrivals outpace admission, the pending
    queue stays deeply backlogged, and the selector decides who starves.
    """
    registry = TenantRegistry([
        TenantSpec("vip", priority=2, rate_share=1.0),
        TenantSpec("lowly", priority=0, rate_share=1.0),
    ])
    fairness = FairnessConfig(
        mode="W", window=1.0, backlog_windows=3, selector=selector,
    )
    requests = merged(
        trace(200, 0.02, tenant_id="vip", input_len=64, output_len=48),
        trace(8, 0.02, tenant_id="lowly", input_len=64, output_len=48),
    )
    flow = FlowGraph(small_cluster, tiny_model, placement8).solve()
    scheduler = HelixScheduler(
        small_cluster, tiny_model, placement8, flow=flow,
        expected_output_len=400000.0,
    )
    sim = Simulation(
        small_cluster, tiny_model, placement8, scheduler, requests,
        max_time=120.0, seed=0,
        tenancy=TenancyConfig(registry, fairness=fairness),
    )
    metrics = sim.run()
    return sim, metrics


class TestStarvation:
    def test_priority_only_selector_starves_the_low_tenant(
        self, small_cluster, tiny_model, placement8
    ):
        sim, _ = _contended_run(
            small_cluster, tiny_model, placement8, selector="priority"
        )
        starved = {e.tenant_id for e in sim.tenancy.starvation_events}
        assert "lowly" in starved, (
            "the deliberately unfair control scheduler should trip the "
            "no-starvation watchdog"
        )

    def test_deficit_selector_serves_everyone(
        self, small_cluster, tiny_model, placement8
    ):
        sim, metrics = _contended_run(
            small_cluster, tiny_model, placement8, selector="deficit"
        )
        assert sim.tenancy.starvation_events == []
        assert sim.tenancy.tokens_by_tenant["lowly"] > 0
        violations = check_tenancy(sim, metrics)
        assert not violations, "\n".join(str(v) for v in violations)


# ----------------------------------------------------------------------
# Admission control: shed lowest priority first, split accounting
# ----------------------------------------------------------------------
class TestAdmission:
    def test_sheds_lowest_priority_first(
        self, small_cluster, tiny_model, placement8
    ):
        registry = TenantRegistry([
            TenantSpec("vip", priority=2),
            TenantSpec("lowly", priority=0),
        ])
        requests = merged(
            trace(40, 0.02, tenant_id="lowly", input_len=64, output_len=48),
            trace(40, 0.02, tenant_id="vip", start=0.01,
                  input_len=64, output_len=48),
        )
        flow = FlowGraph(small_cluster, tiny_model, placement8).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow,
            expected_output_len=400000.0,
        )
        sim = Simulation(
            small_cluster, tiny_model, placement8, scheduler, requests,
            max_time=120.0, seed=0,
            tenancy=TenancyConfig(
                registry,
                fairness=FairnessConfig(mode="W"),
                admission=AdmissionConfig(max_pending=6),
            ),
        )
        metrics = sim.run()
        assert metrics.requests_shed > 0
        shed = dict(metrics.requests_shed_by_priority)
        assert sum(shed.values()) == metrics.requests_shed
        # Evict-lower-priority admission: the cheap class takes the hit.
        assert shed.get(0, 0) > shed.get(2, 0)
        violations = check_tenancy(sim, metrics)
        assert not violations, "\n".join(str(v) for v in violations)

    def test_admission_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_pending=0)


# ----------------------------------------------------------------------
# Per-tenant metrics
# ----------------------------------------------------------------------
class TestTenantMetrics:
    def test_attainment_from_crafted_records(self):
        def record(rid, tid, first, per_token):
            r = RequestRecord(
                request_id=rid, input_len=16, output_len=4,
                arrival_time=0.0, tenant_id=tid,
            )
            r.first_token_time = first
            r.tokens_generated = 4
            r.token_times = [first + i * per_token for i in range(4)]
            r.finish_time = r.token_times[-1]
            return r

        records = [
            record("a:0", "a", first=0.5, per_token=0.1),   # meets both
            record("a:1", "a", first=9.0, per_token=0.1),   # misses TTFT
            record("b:0", "b", first=0.5, per_token=2.0),   # misses TBT
        ]
        per_tenant = aggregate_tenant_metrics(
            records, warmup=0.0, end_time=10.0,
            slo_targets={
                "a": (2.0, 0.25, 0.95),
                "b": (2.0, 0.25, 0.95),
                "ghost": (2.0, 0.25, 0.95),
            },
        )
        assert per_tenant["a"].ttft_attainment == pytest.approx(0.5)
        assert per_tenant["a"].tbt_attainment == pytest.approx(1.0)
        assert not per_tenant["a"].slo_met
        assert per_tenant["b"].tbt_attainment == pytest.approx(0.0)
        # Registered but silent tenants still get a (vacuous) row.
        assert per_tenant["ghost"].requests_submitted == 0
        assert per_tenant["ghost"].slo_met
        # Decode tokens exclude each request's first token (3 of 4, x2).
        assert per_tenant["a"].decode_tokens == 6


# ----------------------------------------------------------------------
# MILP arbitration
# ----------------------------------------------------------------------
class TestArbitration:
    def test_plan_tenants_splits_cluster_throughput(self):
        cluster = small_cluster_fig12()
        planner = HelixMilpPlanner(
            cluster, LLAMA_30B, time_limit=20, prune_degree=6
        )
        registry = TenantRegistry([
            TenantSpec("chat", rate_share=2.0,
                       adapter_bytes_per_layer=50 * 2**20),
            TenantSpec("batch", rate_share=1.0,
                       adapter_bytes_per_layer=50 * 2**20),
        ])
        arb = planner.plan_tenants(registry, guarantee=0.5, burst=1.5)
        assert arb.result.max_throughput > 0
        # The per-tenant split is a decomposition of the shared flow.
        assert arb.total_throughput == pytest.approx(
            arb.result.flow.max_flow, rel=1e-4
        )
        # Every tenant gets at least its guaranteed slice.
        for tid, share in arb.shares.items():
            assert arb.per_tenant_throughput[tid] >= (
                0.5 * share * arb.result.flow.max_flow - 1e-6
            )
        # Adapters eat VRAM: the scaled layer budget is strictly tighter.
        assert arb.max_layers_scale < 1.0
        assert arb.adapter_overhead_bytes == 2 * 50 * 2**20

    def test_plan_tenants_rejects_bad_knobs(self):
        planner = HelixMilpPlanner(
            small_cluster_fig12(), LLAMA_30B, time_limit=5
        )
        registry = TenantRegistry([TenantSpec("a")])
        with pytest.raises(ValueError):
            planner.plan_tenants(registry, guarantee=1.5)
        with pytest.raises(ValueError):
            planner.plan_tenants(registry, burst=0.0)


# ----------------------------------------------------------------------
# Scenario family acceptance
# ----------------------------------------------------------------------
class TestTenantScenarios:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tenant_family_passes_all_invariants(self, seed):
        report = verify_scenario("tenant", seed, "smoke")
        assert_scenario_ok(report)
        assert report.tenancy is not None
        assert report.tenancy["kv_samples"] > 0
        assert 0.0 < report.tenancy["fairness_index"] <= 1.0 + 1e-9
        assert report.tenancy["starvation_events"] == 0
        per_tenant = report.tenancy["per_tenant"]
        assert len(per_tenant) >= 2
        for tm in per_tenant.values():
            assert math.isfinite(tm.goodput)
