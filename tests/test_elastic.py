"""Elasticity & recovery suite: residency, drains, autoscaling, MTTR.

The acceptance criteria of the layer-residency PR, as tier-1 smoke tests:

* residency on with no churn is bit-identical to residency off (all
  serving nodes start resident, so nothing warms);
* a kill-and-rejoin pays a nonzero warm-up window — the rejoined node
  pulls its layers as real network traffic before serving again;
* a pre-warmed spare yields strictly lower MTTR than a cold spare on the
  same seed (residency-aware replanning);
* a graceful ``NodeDrain`` finishes in-flight work and loses zero tokens
  (and retains VRAM residency, unlike a crash);
* the backlog-driven autoscaler loans a spare in under load and drains
  it back when idle;
* the ``elastic`` scenario family passes every invariant, twice
  (determinism).
"""

import math

import pytest

from repro.cluster import A100_40G, Cluster, L4, T4
from repro.core.placement_types import ModelPlacement
from repro.core.units import GBIT
from repro.flow.graph import FlowGraph
from repro.models.specs import ModelSpec
from repro.online import (
    Autoscaler,
    AutoscalerConfig,
    NodeFailure,
    NodeRecovery,
    OnlineController,
)
from repro.scheduling import HelixScheduler
from repro.sim import Request, ResidencyConfig, Simulation
from repro.testkit import assert_scenario_ok, check_elastic, verify_scenario


@pytest.fixture()
def placement8():
    return ModelPlacement.from_intervals(
        8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
    )


def make_simulation(cluster, model, placement, requests, **kwargs):
    flow = FlowGraph(cluster, model, placement).solve()
    scheduler = HelixScheduler(cluster, model, placement, flow=flow)
    return Simulation(cluster, model, placement, scheduler, requests, **kwargs)


def steady_trace(n, spacing, input_len=32, output_len=8):
    return [
        Request(f"r{i}", input_len, output_len, arrival_time=i * spacing)
        for i in range(n)
    ]


def assert_elastic_clean(sim, metrics):
    __tracebackhide__ = True
    violations = check_elastic(sim, metrics)
    assert not violations, "\n".join(str(v) for v in violations)


# ----------------------------------------------------------------------
# Residency basics
# ----------------------------------------------------------------------
class TestResidency:
    def test_residency_off_by_default(self, small_cluster, tiny_model, placement8):
        sim = make_simulation(
            small_cluster, tiny_model, placement8, steady_trace(5, 0.1),
            max_time=30.0, seed=0,
        )
        assert sim.residency is None
        assert sim.warming_nodes == set()
        assert sim.draining_nodes == set()
        sim.run()
        assert sim.drain_log == []

    def test_residency_on_without_churn_is_identical(
        self, small_cluster, tiny_model, placement8
    ):
        """Serving nodes start resident: enabling the ledger changes nothing."""
        requests = steady_trace(30, 0.1)
        off = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0,
        )
        metrics_off = off.run()
        on = make_simulation(
            small_cluster, tiny_model, placement8, list(requests),
            max_time=60.0, seed=0, residency=ResidencyConfig(),
        )
        metrics_on = on.run()
        assert on.token_timeline == off.token_timeline
        assert metrics_on.requests_finished == metrics_off.requests_finished
        assert on.residency.warmup_log == []
        assert on.residency.eviction_log == []

    def test_kill_and_rejoin_pays_a_warmup_window(
        self, small_cluster, tiny_model, placement8
    ):
        """A crash wipes VRAM; the rejoin pulls layers before serving."""
        requests = steady_trace(60, 0.2)
        sim = make_simulation(
            small_cluster, tiny_model, placement8, requests,
            max_time=60.0, seed=0, residency=ResidencyConfig(),
        )
        sim.schedule_event(2.0, lambda s: s.fail_node("a100-0"))
        sim.schedule_event(4.0, lambda s: s.restore_node("a100-0"))
        metrics = sim.run()

        res = sim.residency
        assert len(res.warmup_log) == 1
        record = res.warmup_log[0]
        assert record.node_id == "a100-0"
        assert record.started == pytest.approx(4.0)
        assert record.duration > 0  # no instant serving
        assert record.layers == (0, 1, 2, 3)
        assert record.bytes_pulled > 0
        # Weights came from a live resident replica, not thin air.
        assert record.sources == ("t4-1",)
        assert res.is_resident("a100-0", 0, 4)
        assert metrics.requests_finished == 60
        assert_elastic_clean(sim, metrics)


# ----------------------------------------------------------------------
# Warm vs cold MTTR (residency-aware replanning)
# ----------------------------------------------------------------------
def _wide_model():
    """A per-layer footprint a T4 cannot hold all of (forces the spare)."""
    return ModelSpec(
        name="elastic-wide-12L",
        num_layers=12,
        hidden_size=6656,
        num_heads=52,
        num_kv_heads=52,
        intermediate_size=17920,
    )


def _spare_recovery_run(warm: bool):
    """Kill the sole holder of layers [0, 6); a spare rejoins shortly after.

    The two T4s hold 6 layers each and cannot absorb the loss, so the
    repaired placement *must* use the restored A100 spare — warm (layers
    pre-staged) or cold (pull everything through the network).
    """
    model = _wide_model()
    cluster = Cluster(name="elastic-spare")
    cluster.add_node("t4-0", T4, region="region-0")
    cluster.add_node("t4-1", T4, region="region-0")
    cluster.add_node("spare-0", A100_40G, region="region-0")
    cluster.connect_full_mesh(
        ["t4-0", "t4-1", "spare-0"], 10 * GBIT, 0.001,
        include_coordinator=True,
    )
    cluster.set_node_available("spare-0", False)
    cluster.validate()
    placement = ModelPlacement.from_intervals(
        12, {"t4-0": (0, 6), "t4-1": (6, 12)}
    )
    requests = steady_trace(150, 0.1, input_len=16, output_len=4)
    controller = OnlineController(
        model,
        events=[NodeFailure(6.0, "t4-0"), NodeRecovery(7.0, "spare-0")],
        replan=True,
        replan_lns_rounds=0,  # the deterministic replan mode
    )
    config = ResidencyConfig(
        warm={"spare-0": (0, 12)} if warm else {},
        layer_bytes=5e8,  # ~0.4 s/layer on the 10 Gbit links
        warm_bonus=1.0,
    )
    sim = make_simulation(
        cluster, model, placement, requests,
        max_time=60.0, seed=0, controller=controller, residency=config,
    )
    metrics = sim.run()
    return controller.report(sim, window=0.5), sim, metrics


class TestWarmVsColdMttr:
    def test_warm_spare_recovers_strictly_faster(self):
        warm_report, warm_sim, warm_metrics = _spare_recovery_run(warm=True)
        cold_report, cold_sim, cold_metrics = _spare_recovery_run(warm=False)

        assert math.isfinite(warm_report.mttr)
        assert math.isfinite(cold_report.mttr)
        # Residency-aware replanning: the pre-staged spare serves as soon
        # as the repaired placement lands; the cold spare first pays its
        # weight transfer through the same links the traffic uses.
        assert warm_report.mttr < cold_report.mttr

        # The cold rejoin actually warmed (pulled bytes); the warm one
        # reused what was staged for its spare.
        cold_warmups = [
            r for r in cold_sim.residency.warmup_log
            if r.node_id == "spare-0"
        ]
        assert cold_warmups and cold_warmups[0].bytes_pulled > 0
        assert_elastic_clean(warm_sim, warm_metrics)
        assert_elastic_clean(cold_sim, cold_metrics)


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_loses_zero_tokens(
        self, small_cluster, tiny_model, placement8
    ):
        requests = steady_trace(50, 0.1)
        sim = make_simulation(
            small_cluster, tiny_model, placement8, requests,
            max_time=60.0, seed=0, residency=ResidencyConfig(),
        )
        sim.schedule_event(1.5, lambda s: s.drain_node("a100-0"))
        metrics = sim.run()

        assert metrics.requests_finished == 50
        assert metrics.requests_retried == 0  # nothing was disrupted
        assert sum(r.tokens_lost for r in sim.records) == 0
        assert len(sim.drain_log) == 1
        record = sim.drain_log[0]
        assert record.node_id == "a100-0"
        assert record.kv_leaked == 0
        assert record.completed >= record.started == pytest.approx(1.5)
        assert "a100-0" in sim.down_nodes
        # A graceful drain retains VRAM: the node is a warm spare now.
        assert sim.residency.layers_of("a100-0") == {0, 1, 2, 3}
        assert_elastic_clean(sim, metrics)

    def test_drained_warm_node_rejoins_instantly(
        self, small_cluster, tiny_model, placement8
    ):
        """Drain keeps residency, so the rejoin needs no weight transfer."""
        requests = steady_trace(50, 0.1)
        sim = make_simulation(
            small_cluster, tiny_model, placement8, requests,
            max_time=60.0, seed=0, residency=ResidencyConfig(),
        )
        sim.schedule_event(1.5, lambda s: s.drain_node("a100-0"))
        sim.schedule_event(3.5, lambda s: s.restore_node("a100-0"))
        metrics = sim.run()
        assert sim.residency.warmup_log == []  # nothing to pull
        assert "a100-0" not in sim.down_nodes
        assert "a100-0" not in sim.scheduler.warming_nodes
        assert metrics.requests_finished == 50

    def test_crash_supersedes_drain(
        self, small_cluster, tiny_model, placement8
    ):
        """A node dying mid-drain is a failure, not a clean handoff."""
        requests = steady_trace(30, 0.1, output_len=64)
        sim = make_simulation(
            small_cluster, tiny_model, placement8, requests,
            max_time=60.0, seed=0, residency=ResidencyConfig(),
        )
        sim.schedule_event(1.5, lambda s: s.drain_node("a100-0"))
        sim.schedule_event(1.6, lambda s: s.fail_node("a100-0"))
        metrics = sim.run()
        assert sim.drain_log == []  # the drain never completed cleanly
        assert sim.residency.layers_of("a100-0") == set()  # crash flushed
        assert "a100-0" in sim.down_nodes
        assert metrics.requests_finished == 30
        assert_elastic_clean(sim, metrics)


# ----------------------------------------------------------------------
# Autoscaler
# ----------------------------------------------------------------------
class TestAutoscaler:
    def test_backlog_loans_a_spare_then_idle_returns_it(
        self, tiny_model
    ):
        cluster = Cluster(name="elastic-autoscale")
        cluster.add_node("t4-0", T4, region="region-0")
        cluster.add_node("l4-0", L4, region="region-0")
        cluster.add_node("l4-1", L4, region="region-0")
        cluster.add_node("spare-0", A100_40G, region="region-0")
        cluster.connect_full_mesh(
            ["t4-0", "l4-0", "l4-1", "spare-0"], 10 * GBIT, 0.001,
            include_coordinator=True,
        )
        cluster.set_node_available("spare-0", False)
        cluster.validate()
        placement = ModelPlacement.from_intervals(
            8, {"t4-0": (0, 4), "l4-0": (0, 4), "l4-1": (4, 8)}
        )
        # A dense burst: arrivals far faster than the base capacity.
        requests = steady_trace(150, 0.01)
        autoscaler = Autoscaler(
            AutoscalerConfig(
                interval=0.25,
                backlog_high=5,
                high_ticks=2,
                idle_ticks=8,
                cooldown=2.0,
                min_serving=2,
                start_after=0.5,
            ),
            spares=["spare-0"],
        )
        controller = OnlineController(
            tiny_model, events=[], replan=True, replan_lns_rounds=0,
            autoscaler=autoscaler,
        )
        sim = make_simulation(
            cluster, tiny_model, placement, requests,
            max_time=60.0, seed=0, controller=controller,
            residency=ResidencyConfig(),
        )
        metrics = sim.run()

        kinds = [action for _, action, _ in autoscaler.actions]
        assert "add" in kinds  # the backlog pulled the spare in
        added_at = next(
            t for t, action, _ in autoscaler.actions if action == "add"
        )
        assert added_at < 10.0
        # The burst drained and the idle tail gave the spare back.
        assert "drain" in kinds and "returned" in kinds
        assert autoscaler.pool == ["spare-0"]
        assert autoscaler.loaned == []
        assert metrics.requests_finished == 150
        assert_elastic_clean(sim, metrics)


# ----------------------------------------------------------------------
# The elastic scenario family
# ----------------------------------------------------------------------
class TestElasticScenarios:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_elastic_addresses_verify_clean(self, seed):
        """Full harness: invariants, determinism, flow differential."""
        assert_scenario_ok(verify_scenario("elastic", seed, "smoke"))

    def test_elastic_scenarios_carry_the_elastic_gear(self):
        from repro.scenarios import generate_scenario

        scenario = generate_scenario("elastic", 0, "smoke")
        assert scenario.residency is not None
        assert scenario.autoscaler is not None
        assert scenario.spares
        assert all(
            nid in scenario.cluster.down_node_ids for nid in scenario.spares
        )
