"""The simulator overhaul must not change any observable metric.

The hop-table engine (groups, closed-window fast-forward, vectorized
forwarding) is specified as *bit-identical* to the frozen pre-overhaul
event loop. These tests enforce that specification:

* the differential oracle replays every tier-1 scenario address (all 4
  families x 6 seeds, churny addresses included) through the legacy
  engine, the hop-table engine, the hop-table engine with coalescing
  disabled, and the cross-request batch-level engine, and requires
  exactly equal observables (``tests/test_batch_engine.py`` extends the
  batch engine's coverage to the chaos / elastic / tenant families);
* a scripted closed-window scenario proves the fast-forward engages and
  that a churn event lands mid-window, forcing invalidation (the window
  re-materializes its in-flight hop and falls back to stepping);
* the precomputed roofline constants are checked bit-for-bit against
  ``Profiler.batch_time``, and numpy's ``add.accumulate`` against the
  strict left fold the scalar transmit chain performs.
"""

import math

import numpy as np
import pytest

from repro.cluster import ComputeNode, Profiler, T4, small_cluster_fig12
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph
from repro.models.specs import LLAMA_30B
from repro.scenarios.generator import SCENARIO_FAMILIES
from repro.scheduling import HelixScheduler
from repro.sim import NodeExecutor, Request, Simulation, StageWork
from repro.sim._legacy_reference import LegacySimulation
from repro.testkit.differential import check_sim_engines

SEEDS = range(6)
MATRIX = [
    (family, seed) for family in SCENARIO_FAMILIES for seed in SEEDS
]


@pytest.mark.scenario
@pytest.mark.parametrize(
    "family,seed", MATRIX, ids=[f"{f}-{s}" for f, s in MATRIX]
)
def test_engines_agree_on_matrix_address(family, seed):
    """Legacy vs. hop-table vs. per-hop vs. batch: equal observables."""
    violations = check_sim_engines(family, seed, "smoke")
    assert not violations, "\n".join(str(v) for v in violations)


# ----------------------------------------------------------------------
# Closed-window fast-forward: engagement and mid-window invalidation
# ----------------------------------------------------------------------
def _fig12_serving(requests, **sim_kwargs):
    from repro.placement.petals import PetalsPlanner

    cluster = small_cluster_fig12()
    model = LLAMA_30B
    profiler = Profiler()
    result = PetalsPlanner(cluster, model, profiler).plan()
    scheduler = HelixScheduler(
        cluster, model, result.placement, profiler, flow=result.flow,
        expected_output_len=float(requests[0].output_len),
    )
    sim_cls = sim_kwargs.pop("sim_cls", Simulation)
    return sim_cls(
        cluster, model, result.placement, scheduler, requests,
        profiler=profiler, **sim_kwargs,
    )


def test_fast_forward_engages_on_sequential_stream():
    requests = [
        Request(f"r{i}", 16, 300, arrival_time=i * 500.0) for i in range(3)
    ]
    sim = _fig12_serving(list(requests), max_time=1e9, seed=0)
    metrics = sim.run()
    assert metrics.requests_finished == 3
    # Nearly every decode token of every request should be macro-stepped.
    assert sim.fast_forwarded_tokens > 800

    legacy = _fig12_serving(list(requests), max_time=1e9, seed=0,
                            sim_cls=LegacySimulation)
    legacy_metrics = legacy.run()
    for request in requests:
        assert (
            sim.record_of(request.request_id).token_times
            == legacy.record_of(request.request_id).token_times
        )
    assert metrics.decode_throughput == legacy_metrics.decode_throughput


def test_churn_event_invalidates_fast_forward_window():
    """A failure scheduled mid-decode cuts the window and still matches."""
    requests = [Request("victim", 16, 400)]

    def build(sim_cls):
        sim = _fig12_serving(
            list(requests), max_time=1e9, seed=0, sim_cls=sim_cls
        )
        # Fail a pipeline node mid-decode, restore it later: the window
        # must stop at the env event, the attempt is disrupted, and the
        # retried attempt finishes after recovery.
        def fail(s):
            node_id = s.placement.used_nodes[0]
            s.fail_node(node_id)
            s.schedule_event(s.now + 5.0, lambda s2: s2.restore_node(node_id))

        sim.schedule_event(8.0, fail)
        return sim

    fast = build(Simulation)
    fast_metrics = fast.run()
    # The window formed (tokens were fast-forwarded) and was invalidated
    # (the request was disrupted mid-run and retried).
    assert fast.fast_forwarded_tokens > 0
    assert fast_metrics.requests_retried == 1
    assert fast_metrics.requests_finished == 1

    legacy = build(LegacySimulation)
    legacy_metrics = legacy.run()
    assert (
        fast.record_of("victim").token_times
        == legacy.record_of("victim").token_times
    )
    assert fast_metrics.tokens_lost == legacy_metrics.tokens_lost
    assert fast_metrics.decode_throughput == legacy_metrics.decode_throughput


def test_flooded_equivalence_with_batch_cohorts():
    """A saturated uniform flood (vectorized cohorts) matches exactly."""
    requests = [Request(f"r{i:04d}", 16, 24) for i in range(120)]
    fast = _fig12_serving(list(requests), max_time=1e9, seed=0,
                          max_batch_tokens=2048)
    fast.run()
    assert fast.grouped_hops > 0
    legacy = _fig12_serving(list(requests), max_time=1e9, seed=0,
                            max_batch_tokens=2048, sim_cls=LegacySimulation)
    legacy.run()
    for request in requests:
        assert (
            fast.record_of(request.request_id).token_times
            == legacy.record_of(request.request_id).token_times
        )
    for key, channel in legacy.channels.items():
        fast_channel = fast.channels[key]
        assert fast_channel.bytes_sent == channel.bytes_sent
        assert fast_channel.total_queueing_delay == channel.total_queueing_delay


def test_max_time_truncation_matches_legacy():
    requests = [Request(f"r{i}", 64, 500) for i in range(30)]
    fast = _fig12_serving(list(requests), max_time=6.0, seed=0)
    fast_metrics = fast.run()
    legacy = _fig12_serving(list(requests), max_time=6.0, seed=0,
                            sim_cls=LegacySimulation)
    legacy_metrics = legacy.run()
    assert fast_metrics.requests_finished == legacy_metrics.requests_finished
    assert fast_metrics.decode_tokens == legacy_metrics.decode_tokens
    assert fast_metrics.duration == legacy_metrics.duration
    assert fast.now == legacy.now


# ----------------------------------------------------------------------
# The arithmetic-identity claims behind the hot path
# ----------------------------------------------------------------------
def test_precomputed_batch_constants_match_profiler(tiny_model):
    node = ComputeNode("t4", T4)
    profiler = Profiler()
    executor = NodeExecutor(node, tiny_model, profiler, resident_layers=4)
    for tokens in (1, 7, 64, 513):
        batch = [StageWork("r", 0, tokens, 4, False, tl=tokens * 4)]
        reference = executor.batch_time(batch)
        fast = (
            (tokens * 4) / executor.compute_rate
            + executor.weights_time
            + executor.overhead
        )
        assert fast == reference  # bitwise, not approx


def test_numpy_accumulate_is_strict_left_fold():
    rng = np.random.default_rng(7)
    for _ in range(50):
        k = int(rng.integers(2, 400))
        init = float(rng.uniform(0, 1e9))
        constant = float(rng.uniform(1e-9, 1e3))
        sequential = []
        acc = init
        for _ in range(k):
            acc += constant
            sequential.append(acc)
        chain = np.empty(k + 1)
        chain[0] = init
        chain[1:] = constant
        assert np.add.accumulate(chain)[1:].tolist() == sequential


def test_take_batch_counters_stay_consistent(tiny_model):
    executor = NodeExecutor(
        ComputeNode("t4", T4), tiny_model, Profiler(), 4, max_batch_tokens=25
    )
    for i in range(6):
        executor.enqueue(StageWork(f"r{i}", 0, 10, 4, True, tl=40))
    batch = executor.take_batch()
    assert len(batch) == 2
    assert executor.queue_tokens == 40
    assert executor.queue_tl == 160
    while executor.has_work():
        executor.take_batch()
    assert executor.queue_tokens == 0
    assert executor.queue_tl == 0


def test_token_timeline_bucketing_matches_goodput():
    """Derived bucket view == exact times for window-multiple goodput."""
    from repro.sim.metrics import TokenTimeline, goodput_timeline

    rng = np.random.default_rng(3)
    times = sorted(float(t) for t in rng.uniform(0.0, 30.0, size=500))
    timeline = TokenTimeline()
    for t in times:
        timeline.add(t)
    derived = timeline.times()
    assert len(derived) == len(times)
    for window in (0.25, 1.0, 2.0, 3.0):
        assert goodput_timeline(derived, window, 30.0) == goodput_timeline(
            times, window, 30.0
        )


def test_token_timeline_memory_is_bounded():
    from repro.sim.metrics import TokenTimeline

    timeline = TokenTimeline(resolution=0.5)
    for i in range(100_000):
        timeline.add(12.25)  # all in one bucket
    assert timeline.count == 100_000
    assert len(timeline.bucket_counts()) == 25  # horizon-, not token-bound


def test_timeline_resolution_validation():
    from repro.sim.metrics import TokenTimeline

    with pytest.raises(ValueError):
        TokenTimeline(resolution=0.0)
    with pytest.raises(ValueError):
        TokenTimeline(resolution=math.inf)


def test_simulation_exposes_engine_stats(small_cluster, tiny_model):
    placement = ModelPlacement.from_intervals(
        8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
    )
    flow = FlowGraph(small_cluster, tiny_model, placement).solve()
    scheduler = HelixScheduler(
        small_cluster, tiny_model, placement, flow=flow
    )
    sim = Simulation(
        small_cluster, tiny_model, placement, scheduler,
        [Request("r0", 16, 40)],
    )
    sim.run()
    stats = sim.engine_stats
    assert stats["events_popped"] > 0
    assert stats["fast_forwarded_tokens"] > 0  # single request: closed window
    assert sim.tokens_emitted == 40
    assert len(sim.token_timeline) == 40
