"""Shared fixtures: a tiny model and small clusters for fast tests."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, Profiler, A100_40G, L4, T4
from repro.core.units import GBIT, MBIT
from repro.models.specs import ModelSpec


@pytest.fixture(scope="session")
def tiny_model() -> ModelSpec:
    """An 8-layer toy Transformer that every test GPU can hold chunks of."""
    return ModelSpec(
        name="tiny-8L",
        num_layers=8,
        hidden_size=1024,
        num_heads=8,
        num_kv_heads=8,
        intermediate_size=2816,
        nominal_params=8 * (4 * 1024**2 + 3 * 1024 * 2816),
    )


@pytest.fixture()
def profiler() -> Profiler:
    return Profiler()


@pytest.fixture()
def small_cluster() -> Cluster:
    """1 A100 + 1 L4 + 2 T4 in one region, full mesh at 10 Gb/s."""
    cluster = Cluster(name="test-small")
    cluster.add_node("a100-0", A100_40G, region="r0")
    cluster.add_node("l4-0", L4, region="r0")
    cluster.add_node("t4-0", T4, region="r0")
    cluster.add_node("t4-1", T4, region="r0")
    cluster.connect_full_mesh(
        ["a100-0", "l4-0", "t4-0", "t4-1"], 10 * GBIT, 0.001,
        include_coordinator=True,
    )
    cluster.validate()
    return cluster


@pytest.fixture()
def two_region_cluster() -> Cluster:
    """Two regions joined by a slow link, for congestion-sensitive tests."""
    cluster = Cluster(name="test-two-region")
    cluster.add_node("a100-0", A100_40G, region="r0")
    cluster.add_node("t4-0", T4, region="r1")
    cluster.add_node("t4-1", T4, region="r1")
    cluster.connect_full_mesh(
        ["t4-0", "t4-1"], 10 * GBIT, 0.001, include_coordinator=False
    )
    for nid in ("t4-0", "t4-1"):
        cluster.connect("a100-0", nid, 100 * MBIT, 0.05)
    cluster.connect("coordinator", "a100-0", 10 * GBIT, 0.001)
    for nid in ("t4-0", "t4-1"):
        cluster.connect("coordinator", nid, 100 * MBIT, 0.05)
    cluster.validate()
    return cluster
