"""Cross-backend and feature-ablation tests for the MILP stack.

Randomized small Helix formulations are solved with both backends and the
objectives cross-checked; warm starts are checked to never hurt; the new
branch-and-bound machinery (pseudocost branching, diving, propagation,
reduced-cost fixing, delta-encoded bounds) is exercised both on and off.
"""

import math
import random

import numpy as np
import pytest

from repro.bench.perftrack import TINY_BENCH_MODEL
from repro.cluster import Cluster, Profiler, A100_40G, L4, T4
from repro.core.units import GBIT
from repro.milp import (
    BranchAndBoundSolver,
    MilpProblem,
    SolveStatus,
    lin_sum,
    solve_with_highs,
)
from repro.placement.helix_milp import HelixMilpPlanner


def random_helix_cluster(seed: int) -> Cluster:
    """A small random heterogeneous cluster (3-5 nodes, random links)."""
    rng = random.Random(seed)
    num_nodes = rng.randint(3, 5)
    cluster = Cluster(name=f"rand-{seed}")
    gpus = (A100_40G, L4, T4)
    node_ids = []
    for i in range(num_nodes):
        node_id = f"n{i}"
        cluster.add_node(node_id, gpus[rng.randrange(3)], region="r0")
        node_ids.append(node_id)
    bandwidth = rng.uniform(1.0, 10.0) * GBIT
    cluster.connect_full_mesh(
        node_ids, bandwidth, 0.001, include_coordinator=True
    )
    cluster.validate()
    return cluster


def helix_problem(seed: int):
    cluster = random_helix_cluster(seed)
    planner = HelixMilpPlanner(cluster, TINY_BENCH_MODEL, Profiler())
    return planner, planner.build_formulation()


class TestBackendAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_backends_agree_on_random_helix_formulations(self, seed):
        planner, formulation = helix_problem(seed)
        highs = solve_with_highs(formulation.problem, time_limit=30)
        bnb = BranchAndBoundSolver(
            formulation.problem, time_limit=60, gap_tolerance=1e-6
        ).solve()
        assert highs.status.has_solution and bnb.status.has_solution
        scale = max(1.0, abs(highs.objective))
        assert abs(highs.objective - bnb.objective) <= 1e-5 * scale

    @pytest.mark.parametrize("seed", [0, 2])
    def test_warm_start_never_worse_than_cold(self, seed):
        planner, formulation = helix_problem(seed)
        cold = BranchAndBoundSolver(formulation.problem, time_limit=60).solve()
        hints = planner.heuristic_hints(planner.cluster)
        assert hints, "expected at least one heuristic hint"
        warm_assignment = planner.assignment_from_placement(
            formulation, hints[0], planner.cluster
        )
        warm = BranchAndBoundSolver(
            formulation.problem, time_limit=60
        ).solve(initial_incumbent=warm_assignment)
        assert warm.status.has_solution
        scale = max(1.0, abs(cold.objective))
        assert warm.objective >= cold.objective - 1e-6 * scale

    def test_warm_start_respected_under_tiny_node_limit(self):
        # Even when the tree is cut off immediately, the warm incumbent
        # must survive as the returned solution.
        planner, formulation = helix_problem(1)
        hints = planner.heuristic_hints(planner.cluster)
        warm_assignment = planner.assignment_from_placement(
            formulation, hints[0], planner.cluster
        )
        warm_value = formulation.problem.objective.evaluate(warm_assignment)
        solver = BranchAndBoundSolver(
            formulation.problem, time_limit=60, node_limit=0, diving=False
        )
        solution = solver.solve(initial_incumbent=warm_assignment)
        assert solution.status.has_solution
        assert solution.objective >= warm_value - 1e-9


class TestPlannerEdgeCases:
    def test_lns_on_single_node_cluster_does_not_crash(self):
        # The incremental window heuristic must clamp to the node count
        # (regression: rng.sample raised on a 1-node cluster).
        cluster = Cluster(name="one")
        cluster.add_node("n0", A100_40G, region="r0")
        cluster.connect("coordinator", "n0", 10 * GBIT, 0.001)
        cluster.connect("n0", "coordinator", 10 * GBIT, 0.001)
        cluster.validate()
        planner = HelixMilpPlanner(
            cluster, TINY_BENCH_MODEL, Profiler(),
            time_limit=5.0, lns_rounds=3, lns_time_limit=1.0,
        )
        result = planner.plan()
        assert result.max_throughput > 0

    def test_adaptive_budget_with_tiny_time_limit_returns_solution(self):
        # Regression: a sub-50ms budget must still produce one solve.
        cluster = random_helix_cluster(0)
        planner = HelixMilpPlanner(
            cluster, TINY_BENCH_MODEL, Profiler(), time_limit=0.04
        )
        result = planner.plan()
        assert result.max_throughput > 0


class TestFeatureAblations:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_features_do_not_change_the_optimum(self, seed):
        _, formulation = helix_problem(seed)
        plain = BranchAndBoundSolver(
            formulation.problem, time_limit=60,
            pseudocost=False, diving=False, propagation=False,
            reduced_cost_fixing=False,
        ).solve()
        smart = BranchAndBoundSolver(formulation.problem, time_limit=60).solve()
        scale = max(1.0, abs(plain.objective))
        assert abs(plain.objective - smart.objective) <= 1e-5 * scale

    def test_diving_finds_incumbent_before_branching(self):
        _, formulation = helix_problem(0)
        solver = BranchAndBoundSolver(formulation.problem, time_limit=60)
        solution = solver.solve()
        assert solution.status is SolveStatus.OPTIMAL
        assert solver.stats.dive_incumbents >= 1
        assert solver.stats.time_to_first_incumbent <= solution.solve_time

    def test_stall_time_stops_the_solve(self):
        _, formulation = helix_problem(3)
        solver = BranchAndBoundSolver(
            formulation.problem, time_limit=60, stall_time=0.0
        )
        solution = solver.solve()
        # With a zero stall budget the solve ends at the first incumbent.
        assert solution.status.has_solution
        assert solution.solve_time < 60

    def test_propagation_prunes_infeasible_children(self):
        # x + y == 5 with x branched above 5 forces y negative: the child
        # must be pruned by propagation without an LP solve.
        p = MilpProblem()
        x = p.add_var("x", 0, 10, integer=True)
        y = p.add_var("y", 0, 10, integer=True)
        p.add_constraint(x + y == 5)
        p.add_constraint(2 * x + y >= 5.5)
        p.set_objective(x + 2 * y)
        solution = BranchAndBoundSolver(p, time_limit=10).solve()
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(9.0)  # x=1, y=4

    def test_solver_counts_lp_solves(self):
        _, formulation = helix_problem(2)
        solver = BranchAndBoundSolver(formulation.problem, time_limit=60)
        solution = solver.solve()
        assert solver.stats.lp_solves >= solution.node_count
        assert solver.stats.lp_solves >= 1


class TestCompileCache:
    def build(self):
        p = MilpProblem()
        xs = [p.add_var(f"x{i}", 0, 5, integer=True) for i in range(4)]
        p.add_constraint(lin_sum(xs) <= 10, name="cap")
        p.add_constraint(xs[0] - xs[1] >= -2, name="skew")
        p.set_objective(lin_sum((i + 1) * x for i, x in enumerate(xs)))
        return p, xs

    @staticmethod
    def assert_same_arrays(a, b):
        assert (a.a_matrix != b.a_matrix).nnz == 0
        np.testing.assert_array_equal(a.constraint_lower, b.constraint_lower)
        np.testing.assert_array_equal(a.constraint_upper, b.constraint_upper)
        np.testing.assert_array_equal(a.c, b.c)
        np.testing.assert_array_equal(a.lower, b.lower)
        np.testing.assert_array_equal(a.upper, b.upper)

    def test_cached_compile_matches_fresh(self):
        p, xs = self.build()
        first = p.compile()
        second = p.compile()
        assert second.a_matrix is first.a_matrix  # structure reused
        p.invalidate()
        self.assert_same_arrays(first, p.compile())

    def test_append_and_truncate_are_incremental_and_correct(self):
        p, xs = self.build()
        base = p.compile()
        n = len(p.constraints)
        p.add_constraint(xs[2] == 3, name="fix")
        appended = p.compile()
        assert appended.a_matrix.shape[0] == n + 1
        p.invalidate()
        self.assert_same_arrays(appended, p.compile())
        del p.constraints[n:]
        truncated = p.compile()
        assert truncated.a_matrix.shape[0] == n
        p.invalidate()
        self.assert_same_arrays(truncated, p.compile())
        self.assert_same_arrays(truncated, base)

    def test_bound_mutation_is_seen_without_recompile(self):
        p, xs = self.build()
        p.compile()
        xs[0].lower = xs[0].upper = 2.0
        arrays = p.compile()
        assert arrays.lower[0] == 2.0 and arrays.upper[0] == 2.0
        solution = solve_with_highs(p)
        assert solution.values["x0"] == pytest.approx(2.0)

    def test_objective_change_invalidates_cache(self):
        p, xs = self.build()
        first = p.compile()
        p.set_objective(xs[0], maximize=False)
        second = p.compile()
        assert second.c[0] == 1.0
        assert first.c[0] != second.c[0]

    def test_check_feasible_falls_back_on_partial_assignment(self):
        p, xs = self.build()
        # Only the variables appearing in "cap"/"skew" are provided.
        partial = {f"x{i}": 0.0 for i in range(4)}
        assert p.check_feasible(partial) == []
        extra = p.add_var("unused", 0, 1)
        del extra
        partial_missing = {f"x{i}": 5.0 for i in range(4)}
        assert p.check_feasible(partial_missing) == ["cap"]

    def test_check_feasible_matches_loop_reference(self):
        p, xs = self.build()
        values = {f"x{i}": 4.0 for i in range(4)}
        reference = [
            c.name or f"constraint[{i}]"
            for i, c in enumerate(p.constraints)
            if c.violated_by(values, 1e-5)
        ]
        assert p.check_feasible(values) == reference


class TestSplitConstraints:
    def test_masked_split_matches_expected_blocks(self):
        p = MilpProblem()
        x = p.add_var("x", 0, 10)
        y = p.add_var("y", 0, 10)
        p.add_constraint(x + y <= 8)
        p.add_constraint(x - y >= 1)
        p.add_constraint(x + 2 * y == 6)
        p.set_objective(x + y)
        solver = BranchAndBoundSolver(p)
        assert solver._a_eq.shape == (1, 2)
        assert solver._a_ub.shape == (2, 2)
        assert solver._b_eq.tolist() == [6.0]
        assert sorted(solver._b_ub.tolist()) == [-1.0, 8.0]
        solution = solver.solve()
        assert solution.status is SolveStatus.OPTIMAL

    def test_no_constraints(self):
        p = MilpProblem()
        p.add_var("x", 0, 3, integer=True)
        p.set_objective(p.variables[0])
        solver = BranchAndBoundSolver(p)
        assert solver._a_ub is None and solver._a_eq is None
        assert solver.solve().objective == pytest.approx(3.0)


class TestDeltaBounds:
    def test_deep_tree_solves_without_full_bound_copies(self):
        # A problem forcing real branching depth; correctness of the
        # delta-chain materialization shows up as the right optimum.
        rng = random.Random(7)
        p = MilpProblem()
        xs = [p.add_var(f"x{i}", 0, 3, integer=True) for i in range(8)]
        weights = [rng.randint(2, 9) for _ in xs]
        values = [rng.randint(1, 12) for _ in xs]
        p.add_constraint(lin_sum(w * x for w, x in zip(weights, xs)) <= 31)
        p.set_objective(lin_sum(v * x for v, x in zip(values, xs)))
        bnb = BranchAndBoundSolver(p, time_limit=30).solve()
        highs = solve_with_highs(p)
        assert bnb.objective == pytest.approx(highs.objective)
        # Integer feasibility of the returned values.
        for name, value in bnb.values.items():
            assert value == pytest.approx(round(value))
        assert not math.isnan(bnb.objective)
