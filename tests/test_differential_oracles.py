"""Differential oracles: fast paths agree with their reference paths.

Each oracle cross-validates one of the incremental machines added in PRs
1-2 against its slow reference on scenario-generated material:

* ``FlowGraph.reevaluate`` vs. building a fresh graph per placement;
* the ``bnb`` branch-and-bound vs. the scipy/HiGHS backend;
* incremental-LNS re-solves vs. ``lns_mode="rebuild"``;
* incremental ``MilpProblem.compile`` vs. an invalidated cold compile.
"""

import pytest

from repro.scenarios import SCENARIO_FAMILIES, generate_scenario
from repro.testkit import (
    check_backend_agreement,
    check_incremental_compile,
    check_lns_modes_agree,
    check_reevaluate_vs_rebuild,
    random_placements,
)


def _fail(violations):
    assert not violations, "\n".join(str(v) for v in violations)


class TestFlowOracles:
    @pytest.mark.parametrize("family", SCENARIO_FAMILIES)
    def test_reevaluate_matches_rebuild(self, family):
        _fail(check_reevaluate_vs_rebuild(generate_scenario(family, 0)))

    def test_reevaluate_matches_rebuild_on_wide_model(self):
        # full_mesh/0 draws the VRAM-bound model shape: multi-stage
        # placements with real handoff validity churn between candidates.
        scenario = generate_scenario("full_mesh", 0)
        assert scenario.model.name.startswith("scn-wide")
        _fail(check_reevaluate_vs_rebuild(scenario, count=20))

    def test_random_placements_are_seeded(self):
        a = random_placements(generate_scenario("geo_regions", 2))
        b = random_placements(generate_scenario("geo_regions", 2))
        assert a == b


class TestMilpOracles:
    @pytest.mark.parametrize("family", SCENARIO_FAMILIES)
    def test_backends_agree(self, family):
        _fail(check_backend_agreement(generate_scenario(family, 1)))

    @pytest.mark.parametrize("family", ["full_mesh", "sparse_partitioned"])
    def test_lns_modes_agree(self, family):
        _fail(check_lns_modes_agree(generate_scenario(family, 2)))

    @pytest.mark.parametrize("family", ["geo_regions", "star"])
    def test_incremental_compile_matches_cold(self, family):
        _fail(check_incremental_compile(generate_scenario(family, 3)))


class TestPlannerDominance:
    def test_helix_never_loses_to_its_hints(self):
        # The MILP planner warm-starts from the heuristics and must never
        # return something worse — checked on a generated topology rather
        # than a hand-written preset.
        from repro.bench.runner import make_planner
        from repro.testkit.differential import _milp_material

        cluster, model = _milp_material(generate_scenario("star", 4))
        best_heuristic = 0.0
        for method in ("swarm", "petals"):
            planner = make_planner(method, cluster, model)
            best_heuristic = max(best_heuristic, planner.plan().max_throughput)
        helix = make_planner(
            "helix", cluster, model, time_limit=10.0, backend="bnb"
        )
        assert helix.plan().max_throughput >= best_heuristic - 1e-6
