"""Differential sanity for the under-tested planners and schedulers.

The ``petals``, ``swarm``, and ``separate`` (SP/SP+) planners and the
baseline scheduling policies get the same treatment the Helix path gets
in the sweep: on *generated* scenarios, every produced placement must
validate against VRAM bounds, satisfy the flow invariants, and stay
below the compute-sum throughput bound; every scheduled pipeline must
cover the model's layers exactly once, in order, through nodes that
actually hold them.
"""

import pytest

from repro.bench.runner import make_planner, make_scheduler
from repro.core.errors import PlacementError
from repro.scenarios import generate_scenario
from repro.sim.simulator import Simulation
from repro.testkit import SchedulerAuditor, check_planner_result

#: Dense families only: the heuristics are topology-blind, so sparse
#: topologies can legitimately zero them out (the sweep covers those via
#: its fallback chain).
_ADDRESSES = [("full_mesh", 0), ("full_mesh", 3), ("geo_regions", 1)]


class TestBaselinePlanners:
    @pytest.mark.parametrize("family,seed", _ADDRESSES)
    @pytest.mark.parametrize("method", ["petals", "swarm", "sp", "sp+"])
    def test_placements_satisfy_invariants(self, method, family, seed):
        scenario = generate_scenario(family, seed)
        planner = make_planner(method, scenario.cluster, scenario.model)
        try:
            result = planner.plan()
        except PlacementError:
            if method in ("sp", "sp+"):
                pytest.skip(
                    f"{method} cannot form pipelines on this draw "
                    "(homogeneous groups too small)"
                )
            raise
        violations = check_planner_result(
            result, scenario.cluster, scenario.model,
            max_weight_fraction=getattr(planner, "max_weight_fraction", None),
        )
        assert not violations, "\n".join(
            f"{v} ({scenario.repro_command()})" for v in violations
        )

    @pytest.mark.parametrize("family,seed", _ADDRESSES)
    def test_heuristics_never_beat_the_upper_bound_together(
        self, family, seed
    ):
        scenario = generate_scenario(family, seed)
        planner = make_planner("swarm", scenario.cluster, scenario.model)
        upper = planner.compute_upper_bound()
        for method in ("petals", "swarm"):
            result = make_planner(
                method, scenario.cluster, scenario.model
            ).plan()
            assert result.max_throughput <= upper + 1e-6 * max(1.0, upper)

    def test_sp_plus_builds_pipelines_on_fig12(self):
        # The SP baselines need homogeneous groups; the paper's fig12
        # cluster (4 L4 + 6 T4) is their reference shape.
        from repro.cluster.presets import small_cluster_fig12
        from repro.models.specs import LLAMA_30B

        cluster = small_cluster_fig12()
        planner = make_planner("sp+", cluster, LLAMA_30B)
        result = planner.plan()
        assert result.pipelines, "sp+ must report its fixed pipelines"
        violations = check_planner_result(
            result, cluster, LLAMA_30B,
            max_weight_fraction=planner.max_weight_fraction,
        )
        assert not violations, "\n".join(str(v) for v in violations)


class TestBaselineSchedulers:
    @pytest.mark.parametrize(
        "method", ["helix", "swarm", "random", "shortest-queue"]
    )
    def test_pipelines_cover_layers_through_holding_nodes(self, method):
        scenario = generate_scenario("full_mesh", 1)
        planner_result = make_planner(
            "petals", scenario.cluster, scenario.model
        ).plan()
        scheduler = make_scheduler(
            method, scenario.cluster, scenario.model, planner_result, seed=0
        )
        auditor = SchedulerAuditor(scheduler)
        pipelines = []
        inner = scheduler.schedule

        def capture(request_id, input_len):
            pipeline = inner(request_id, input_len)
            if pipeline is not None:
                pipelines.append(pipeline)
            return pipeline

        scheduler.schedule = capture
        sim = Simulation(
            cluster=scenario.cluster,
            model=scenario.model,
            placement=planner_result.placement,
            scheduler=scheduler,
            requests=scenario.requests,
            max_time=scenario.max_time,
        )
        metrics = sim.run()
        assert metrics.requests_finished == metrics.requests_submitted
        assert not auditor.violations
        assert pipelines
        placement = planner_result.placement
        for pipeline in pipelines:
            # Exactly-once, in-order layer coverage...
            pipeline.validate(scenario.model.num_layers)
            # ...through nodes that genuinely hold the layers they compute.
            for stage in pipeline.stages:
                interval = placement.interval(stage.node_id)
                assert interval.start <= stage.start
                assert stage.end == interval.end

    def test_fixed_pipeline_scheduler_serves_sp_plus_plan(self):
        from repro.cluster.presets import small_cluster_fig12
        from repro.models.specs import LLAMA_30B
        from repro.sim.request import Request

        cluster = small_cluster_fig12()
        planner_result = make_planner("sp+", cluster, LLAMA_30B).plan()
        scheduler = make_scheduler(
            "fixed", cluster, LLAMA_30B, planner_result
        )
        requests = [Request(f"r{i}", 32, 4) for i in range(12)]
        sim = Simulation(
            cluster=cluster,
            model=LLAMA_30B,
            placement=planner_result.placement,
            scheduler=scheduler,
            requests=requests,
            max_time=600.0,
        )
        metrics = sim.run()
        assert metrics.requests_finished == len(requests)
        assert metrics.kv_overflow_events == 0
