"""Tests for the MILP modeling layer and both solver backends."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.milp import (
    BranchAndBoundSolver,
    MilpProblem,
    Sense,
    SolveStatus,
    lin_sum,
    solve_with_highs,
)
from repro.milp.model import LinExpr


class TestExpressions:
    def test_variable_arithmetic(self):
        p = MilpProblem()
        x = p.add_var("x")
        y = p.add_var("y")
        expr = 2 * x + 3 * y - 1
        assert expr.terms[x] == 2 and expr.terms[y] == 3
        assert expr.constant == -1

    def test_subtraction_and_negation(self):
        p = MilpProblem()
        x = p.add_var("x")
        expr = 5 - x
        assert expr.terms[x] == -1 and expr.constant == 5
        assert (-x).terms[x] == -1

    def test_lin_sum(self):
        p = MilpProblem()
        xs = [p.add_var(f"x{i}") for i in range(4)]
        expr = lin_sum(x * (i + 1) for i, x in enumerate(xs))
        assert expr.terms[xs[3]] == 4

    def test_evaluate(self):
        p = MilpProblem()
        x = p.add_var("x")
        y = p.add_var("y")
        expr = 2 * x + y + 1
        assert expr.evaluate({"x": 3, "y": 4}) == 11

    def test_constraint_senses(self):
        p = MilpProblem()
        x = p.add_var("x")
        assert (x <= 5).sense is Sense.LE
        assert (x >= 5).sense is Sense.GE
        assert (x == 5).sense is Sense.EQ

    def test_constraint_violation_check(self):
        p = MilpProblem()
        x = p.add_var("x")
        c = p.add_constraint(x <= 5, name="cap")
        assert not c.violated_by({"x": 5.0})
        assert c.violated_by({"x": 5.1})

    def test_duplicate_names_rejected(self):
        p = MilpProblem()
        p.add_var("x")
        with pytest.raises(ValueError, match="duplicate"):
            p.add_var("x")

    def test_invalid_bounds_rejected(self):
        p = MilpProblem()
        with pytest.raises(ValueError, match="lower"):
            p.add_var("x", lower=2, upper=1)

    def test_scale_by_expression_rejected(self):
        p = MilpProblem()
        x = p.add_var("x")
        with pytest.raises(TypeError):
            x * x  # noqa: B018 - the point is the failure

    def test_add_constraint_type_check(self):
        p = MilpProblem()
        with pytest.raises(TypeError, match="Constraint"):
            p.add_constraint(42)  # type: ignore[arg-type]

    def test_check_feasible_names(self):
        p = MilpProblem()
        x = p.add_var("x")
        p.add_constraint(x <= 1, name="first")
        p.add_constraint(x >= 0)
        assert p.check_feasible({"x": 2.0}) == ["first"]


class TestCompile:
    def test_compile_shapes(self):
        p = MilpProblem()
        x = p.add_var("x", 0, 4, integer=True)
        y = p.add_var("y")
        p.add_constraint(x + y <= 6)
        p.add_constraint(x - y == 1)
        p.set_objective(x + 2 * y)
        arrays = p.compile()
        assert arrays.a_matrix.shape == (2, 2)
        assert list(arrays.integrality) == [1, 0]
        # Maximization compiles to negated costs.
        assert arrays.c[0] == -1 and arrays.c[1] == -2

    def test_equality_bounds(self):
        p = MilpProblem()
        x = p.add_var("x")
        p.add_constraint(x == 3)
        arrays = p.compile()
        assert arrays.constraint_lower[0] == 3 == arrays.constraint_upper[0]


KNAPSACK_ITEMS = [(10, 4), (7, 3), (6, 2), (3, 1)]  # (value, weight)


def knapsack_problem(capacity: int) -> MilpProblem:
    p = MilpProblem("knapsack")
    xs = [p.add_binary(f"x{i}") for i in range(len(KNAPSACK_ITEMS))]
    p.add_constraint(
        lin_sum(w * x for (_, w), x in zip(KNAPSACK_ITEMS, xs)) <= capacity
    )
    p.set_objective(lin_sum(v * x for (v, _), x in zip(KNAPSACK_ITEMS, xs)))
    return p


def brute_force_knapsack(capacity: int) -> float:
    best = 0.0
    n = len(KNAPSACK_ITEMS)
    for mask in range(1 << n):
        value = weight = 0
        for i in range(n):
            if mask >> i & 1:
                value += KNAPSACK_ITEMS[i][0]
                weight += KNAPSACK_ITEMS[i][1]
        if weight <= capacity:
            best = max(best, float(value))
    return best


class TestSolvers:
    @pytest.mark.parametrize("capacity", [0, 1, 3, 5, 7, 10])
    def test_highs_matches_brute_force(self, capacity):
        solution = solve_with_highs(knapsack_problem(capacity))
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(brute_force_knapsack(capacity))

    @pytest.mark.parametrize("capacity", [0, 1, 3, 5, 7, 10])
    def test_bnb_matches_brute_force(self, capacity):
        solver = BranchAndBoundSolver(knapsack_problem(capacity), time_limit=20)
        solution = solver.solve()
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(brute_force_knapsack(capacity))

    def test_bnb_records_trajectory(self):
        solver = BranchAndBoundSolver(knapsack_problem(5), time_limit=20)
        solver.solve()
        assert len(solver.trajectory) >= 2
        incumbents = [
            t.incumbent for t in solver.trajectory if not math.isnan(t.incumbent)
        ]
        assert incumbents == sorted(incumbents)  # incumbents only improve

    def test_bnb_warm_start_accepted(self):
        solver = BranchAndBoundSolver(knapsack_problem(5), time_limit=20)
        warm = {"x0": 1.0, "x1": 0.0, "x2": 0.0, "x3": 1.0}
        solution = solver.solve(initial_incumbent=warm)
        assert solution.objective == pytest.approx(brute_force_knapsack(5))

    def test_bnb_rejects_infeasible_warm_start(self):
        solver = BranchAndBoundSolver(knapsack_problem(3), time_limit=20)
        bad = {"x0": 1.0, "x1": 1.0, "x2": 1.0, "x3": 1.0}
        with pytest.raises(ValueError, match="violates"):
            solver.solve(initial_incumbent=bad)

    def test_bnb_early_stop_bound(self):
        # Stop as soon as the incumbent reaches a known bound.
        problem = knapsack_problem(10)
        solver = BranchAndBoundSolver(
            problem, time_limit=20, early_stop_bound=brute_force_knapsack(10)
        )
        solution = solver.solve()
        assert solution.objective == pytest.approx(brute_force_knapsack(10))

    def test_highs_cutoff_infeasible_when_above_optimum(self):
        solution = solve_with_highs(
            knapsack_problem(5), objective_cutoff=brute_force_knapsack(5) + 1
        )
        assert solution.status is SolveStatus.INFEASIBLE

    def test_highs_minimization(self):
        p = MilpProblem()
        x = p.add_var("x", 0, 10, integer=True)
        p.add_constraint(x >= 3.5)
        p.set_objective(x, maximize=False)
        assert solve_with_highs(p).objective == pytest.approx(4.0)

    def test_bnb_minimization(self):
        p = MilpProblem()
        x = p.add_var("x", 0, 10, integer=True)
        p.add_constraint(x >= 3.5)
        p.set_objective(x, maximize=False)
        assert BranchAndBoundSolver(p).solve().objective == pytest.approx(4.0)

    def test_infeasible_problem(self):
        p = MilpProblem()
        x = p.add_var("x", 0, 1)
        p.add_constraint(x >= 2)
        p.set_objective(x)
        assert solve_with_highs(p).status is SolveStatus.INFEASIBLE
        assert BranchAndBoundSolver(p).solve().status is SolveStatus.INFEASIBLE

    def test_mixed_integer_continuous(self):
        p = MilpProblem()
        f = p.add_var("f", 0, 100)
        d = p.add_binary("d")
        p.add_constraint(f <= 30 * d)
        p.add_constraint(f <= 25)
        p.set_objective(f)
        for solution in (solve_with_highs(p), BranchAndBoundSolver(p).solve()):
            assert solution.objective == pytest.approx(25.0)
            assert round(solution.values["d"]) == 1

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(st.integers(1, 20), min_size=2, max_size=6),
        weights=st.lists(st.integers(1, 10), min_size=2, max_size=6),
        capacity=st.integers(0, 30),
    )
    def test_backends_agree_on_random_knapsacks(self, values, weights, capacity):
        n = min(len(values), len(weights))
        p = MilpProblem()
        xs = [p.add_binary(f"x{i}") for i in range(n)]
        p.add_constraint(lin_sum(w * x for w, x in zip(weights, xs)) <= capacity)
        p.set_objective(lin_sum(v * x for v, x in zip(values, xs)))
        highs = solve_with_highs(p)
        bnb = BranchAndBoundSolver(p, time_limit=10).solve()
        assert highs.objective == pytest.approx(bnb.objective, abs=1e-6)

    def test_solution_gap_property(self):
        solution = solve_with_highs(knapsack_problem(5))
        assert solution.gap == pytest.approx(0.0, abs=1e-6)
