"""Tests for the Helix scheduler, baselines, and KV estimation."""

import pytest

from repro.core.errors import SchedulingError
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph
from repro.scheduling import (
    FixedPipelineScheduler,
    HelixScheduler,
    KVCacheEstimator,
    RandomScheduler,
    ShortestQueueScheduler,
    SwarmScheduler,
)
from repro.scheduling.pipelines import PipelineStage, RequestPipeline


@pytest.fixture()
def placement8():
    return ModelPlacement.from_intervals(
        8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
    )


@pytest.fixture()
def flow8(small_cluster, tiny_model, placement8):
    return FlowGraph(small_cluster, tiny_model, placement8).solve()


class TestPipelineTypes:
    def test_pipeline_validates_coverage(self):
        pipeline = RequestPipeline.from_stages(
            [PipelineStage("a", 0, 4), PipelineStage("b", 4, 8)]
        )
        pipeline.validate(8)

    def test_pipeline_detects_gap(self):
        pipeline = RequestPipeline.from_stages(
            [PipelineStage("a", 0, 3), PipelineStage("b", 4, 8)]
        )
        with pytest.raises(SchedulingError, match="gap"):
            pipeline.validate(8)

    def test_pipeline_detects_incomplete(self):
        pipeline = RequestPipeline.from_stages([PipelineStage("a", 0, 6)])
        with pytest.raises(SchedulingError, match="covers"):
            pipeline.validate(8)

    def test_pipeline_detects_repeat_node(self):
        pipeline = RequestPipeline.from_stages(
            [PipelineStage("a", 0, 4), PipelineStage("a", 4, 8)]
        )
        with pytest.raises(SchedulingError, match="twice"):
            pipeline.validate(8)

    def test_invalid_stage_interval(self):
        with pytest.raises(SchedulingError):
            PipelineStage("a", 4, 4)


class TestKVEstimator:
    def test_admit_until_high_water(self):
        est = KVCacheEstimator({"n": 1000}, expected_output_len=50, high_water_mark=0.9)
        # Each request: 100 + 50 = 150 estimated tokens; 6 x 150 = 900 = HWM.
        for _ in range(6):
            assert est.admits("n", 100)
            est.charge("n", 100)
        assert not est.admits("n", 100)

    def test_release_restores_admission(self):
        est = KVCacheEstimator({"n": 400}, expected_output_len=100)
        est.charge("n", 200)
        assert not est.admits("n", 200)
        est.release("n", 200)
        assert est.admits("n", 200)

    def test_unknown_node_never_admits(self):
        est = KVCacheEstimator({"n": 100})
        assert not est.admits("ghost", 1)

    def test_occupancy_reporting(self):
        est = KVCacheEstimator({"n": 1000}, expected_output_len=0)
        est.charge("n", 250)
        assert est.occupancy("n") == pytest.approx(0.25)
        assert est.capacity("n") == 1000

    def test_invalid_high_water_mark(self):
        with pytest.raises(ValueError):
            KVCacheEstimator({}, high_water_mark=0.0)

    def test_release_clamps_at_zero(self):
        est = KVCacheEstimator({"n": 100}, expected_output_len=0)
        est.release("n", 50)
        assert est.occupancy("n") == 0.0


class TestHelixScheduler:
    def test_pipelines_are_valid(self, small_cluster, tiny_model, placement8, flow8):
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow8
        )
        for i in range(50):
            pipeline = scheduler.schedule(f"r{i}", 64)
            assert pipeline is not None
            pipeline.validate(8)

    def test_weights_come_from_flow(self, small_cluster, tiny_model, placement8, flow8):
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow8
        )
        weights = scheduler.selector_weights("coordinator")
        for successor, weight in weights.items():
            assert weight == pytest.approx(
                flow8.connection_flows[("coordinator", successor)]
            )

    def test_traffic_follows_flow_ratio(
        self, small_cluster, tiny_model, placement8, flow8
    ):
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow8,
            kv_masking=False,
        )
        first_hops = {}
        n = 400
        for i in range(n):
            pipeline = scheduler.schedule(f"r{i}", 8)
            first = pipeline.stages[0].node_id
            first_hops[first] = first_hops.get(first, 0) + 1
            scheduler.notify_finished(f"r{i}")
        total_flow = sum(
            flow8.connection_flows.get(("coordinator", nid), 0.0)
            for nid in ("a100-0", "t4-1")
        )
        for nid, count in first_hops.items():
            expected = n * flow8.connection_flows[("coordinator", nid)] / total_flow
            assert abs(count - expected) <= 0.05 * n + 2

    def test_zero_flow_placement_rejected(self, small_cluster, tiny_model, placement8, flow8):
        from dataclasses import replace

        empty = replace(flow8, max_flow=0.0)
        with pytest.raises(SchedulingError, match="no flow"):
            HelixScheduler(small_cluster, tiny_model, placement8, flow=empty)

    def test_kv_mask_blocks_when_full(self, small_cluster, tiny_model, placement8, flow8):
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow8,
            expected_output_len=1e7,  # absurd estimate: nothing admits
        )
        assert scheduler.schedule("r0", 64) is None

    def test_double_schedule_rejected(self, small_cluster, tiny_model, placement8, flow8):
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow8
        )
        assert scheduler.schedule("r0", 8) is not None
        with pytest.raises(SchedulingError, match="already"):
            scheduler.schedule("r0", 8)

    def test_notify_finished_releases(self, small_cluster, tiny_model, placement8, flow8):
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow8
        )
        pipeline = scheduler.schedule("r0", 64)
        node = pipeline.stages[0].node_id
        assert scheduler.outstanding[node] == 1
        scheduler.notify_finished("r0")
        assert scheduler.outstanding[node] == 0
        assert scheduler.active_requests == 0

    def test_pipeline_of_active_request(self, small_cluster, tiny_model, placement8, flow8):
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow8
        )
        pipeline = scheduler.schedule("r0", 8)
        assert scheduler.pipeline_of("r0") is pipeline
        with pytest.raises(SchedulingError):
            scheduler.pipeline_of("ghost")


class TestBaselineSchedulers:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda c, m, p: SwarmScheduler(c, m, p, seed=3),
            lambda c, m, p: RandomScheduler(c, m, p, seed=3),
            lambda c, m, p: ShortestQueueScheduler(c, m, p),
        ],
    )
    def test_baselines_build_valid_pipelines(
        self, small_cluster, tiny_model, placement8, factory
    ):
        scheduler = factory(small_cluster, tiny_model, placement8)
        for i in range(30):
            pipeline = scheduler.schedule(f"r{i}", 32)
            assert pipeline is not None
            pipeline.validate(8)

    def test_swarm_ewma_update(self, small_cluster, tiny_model, placement8):
        scheduler = SwarmScheduler(small_cluster, tiny_model, placement8, seed=0)
        before = scheduler.throughput_estimate("a100-0")
        scheduler.notify_node_progress("a100-0", tokens=10000, elapsed=0.1)
        after = scheduler.throughput_estimate("a100-0")
        assert after != before

    def test_shortest_queue_balances(self, small_cluster, tiny_model, placement8):
        scheduler = ShortestQueueScheduler(small_cluster, tiny_model, placement8)
        for i in range(8):
            scheduler.schedule(f"r{i}", 8)
        # Two entry nodes should have near-equal outstanding counts.
        assert abs(
            scheduler.outstanding["a100-0"] - scheduler.outstanding["t4-1"]
        ) <= 1

    def test_random_deterministic_with_seed(
        self, small_cluster, tiny_model, placement8
    ):
        runs = []
        for _ in range(2):
            scheduler = RandomScheduler(small_cluster, tiny_model, placement8, seed=7)
            runs.append(
                [scheduler.schedule(f"r{i}", 8).node_ids for i in range(10)]
            )
        assert runs[0] == runs[1]


class TestFixedPipelineScheduler:
    def test_round_robin_over_pipelines(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8,
            {"a100-0": (0, 8), "l4-0": (0, 8)},
        )
        scheduler = FixedPipelineScheduler(
            small_cluster, tiny_model, placement,
            pipelines=[["a100-0"], ["l4-0"]],
        )
        firsts = [scheduler.schedule(f"r{i}", 8).stages[0].node_id for i in range(4)]
        assert firsts == ["a100-0", "l4-0", "a100-0", "l4-0"]

    def test_requires_pipelines(self, small_cluster, tiny_model, placement8):
        with pytest.raises(SchedulingError, match="no fixed pipelines"):
            FixedPipelineScheduler(
                small_cluster, tiny_model, placement8, pipelines=[]
            )

    def test_invalid_pipeline_rejected(self, small_cluster, tiny_model, placement8):
        with pytest.raises(SchedulingError):
            FixedPipelineScheduler(
                small_cluster, tiny_model, placement8,
                pipelines=[["l4-0"]],  # starts at layer 4: gap at 0
            )

    def test_skips_full_pipeline(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 8), "t4-0": (0, 8)}
        )
        scheduler = FixedPipelineScheduler(
            small_cluster, tiny_model, placement,
            pipelines=[["a100-0"], ["t4-0"]],
            expected_output_len=0.0,
        )
        capacity = scheduler.kv.capacity("t4-0")
        # Fill t4-0 beyond its high-water mark.
        scheduler.kv.charge("t4-0", int(capacity * 0.95))
        firsts = {scheduler.schedule(f"r{i}", 8).stages[0].node_id for i in range(4)}
        assert firsts == {"a100-0"}


class TestKVEstimatorPipelineCharges:
    """charge_pipeline/release_pipeline == per-node charge/release."""

    def test_pipeline_charge_matches_per_node(self):
        from repro.scheduling.kv_estimator import KVCacheEstimator

        a = KVCacheEstimator({"x": 1000, "y": 500}, expected_output_len=50.0)
        b = KVCacheEstimator({"x": 1000, "y": 500}, expected_output_len=50.0)
        a.charge("x", 30)
        a.charge("y", 30)
        b.charge_pipeline(["x", "y"], 30)
        assert a.occupancy("x") == b.occupancy("x")
        assert a.occupancy("y") == b.occupancy("y")
        a.release("x", 30)
        a.release("y", 30)
        b.release_pipeline(["x", "y"], 30)
        assert a.occupancy("x") == b.occupancy("x") == 0.0
        assert a.occupancy("y") == b.occupancy("y") == 0.0

    def test_pipeline_release_clamps_at_zero(self):
        from repro.scheduling.kv_estimator import KVCacheEstimator

        est = KVCacheEstimator({"x": 100}, expected_output_len=10.0)
        est.release_pipeline(["x", "unknown"], 500)
        assert est.occupancy("x") == 0.0
