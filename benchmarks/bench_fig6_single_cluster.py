"""Fig. 6: single-cluster serving — Helix vs Swarm vs SP.

Paper shape (24 nodes, 10 Gb/s):

* LLaMA-30B: each GPU type serves its own replicas, so Helix ≈ SP (Helix
  +4-14% decode throughput), and both beat Swarm by ~2.1x.
* LLaMA-70B: no single type can serve a replica at half VRAM; SP sacrifices
  KV-cache room and loses — Helix reaches 1.86x/1.69x SP and ~2x Swarm.

We reproduce both settings on the scaled trace; the assertions pin the
orderings (who wins), not the absolute numbers.
"""

import pytest

from benchmarks.conftest import BENCH_PROFILER, SIM_MAX_TIME, SIM_WARMUP
from repro.bench.runner import run_offline, run_online
from repro.bench.tables import format_table
from repro.models.specs import LLAMA_30B, LLAMA_70B

MODELS = {"llama-30b": LLAMA_30B, "llama-70b": LLAMA_70B}
METHODS = ("helix", "swarm", "sp")


def serve(planner_cache, trace, model_name, method, setting):
    cluster = planner_cache.cluster("single-24")
    planner_result = planner_cache.plan("single-24", model_name, method)
    scheduler = "helix" if method == "helix" else (
        "swarm" if method == "swarm" else "fixed"
    )
    runner = run_offline if setting == "offline" else run_online
    return runner(
        cluster, MODELS[model_name], planner_result, scheduler, trace,
        max_time=SIM_MAX_TIME, warmup=SIM_WARMUP, profiler=BENCH_PROFILER, placement_method=method,
    )


@pytest.mark.parametrize("model_name", ["llama-30b", "llama-70b"])
def test_fig6_single_cluster(benchmark, planner_cache, bench_trace, report, model_name):
    results = {}
    for setting in ("offline", "online"):
        for method in METHODS:
            results[(setting, method)] = serve(
                planner_cache, bench_trace, model_name, method, setting
            )

    def rerun_one():
        return serve(planner_cache, bench_trace, model_name, "helix", "offline")

    benchmark.pedantic(rerun_one, rounds=1, iterations=1)

    rows = []
    for (setting, method), result in results.items():
        m = result.metrics
        rows.append(
            [setting, method, round(m.decode_throughput, 1),
             round(m.prompt_latency.p50, 2), round(m.decode_latency.p50, 3),
             m.requests_finished]
        )
    text = format_table(
        ["setting", "method", "decode_tok_s", "prompt_p50_s", "decode_p50_s",
         "finished"],
        rows,
    )

    helix_off = results[("offline", "helix")].metrics.decode_throughput
    swarm_off = results[("offline", "swarm")].metrics.decode_throughput
    sp_off = results[("offline", "sp")].metrics.decode_throughput
    # Planner-level claim: Helix's placement max-flow dominates Swarm's.
    helix_flow = results[("offline", "helix")].planner.max_throughput
    swarm_flow = results[("offline", "swarm")].planner.max_throughput
    assert helix_flow >= swarm_flow - 1e-6
    if model_name == "llama-70b":
        # Paper's 70B story: Swarm's even partition and SP's KV sacrifice
        # both lose end to end.
        assert helix_off > swarm_off, "Helix must out-serve Swarm offline"
        assert helix_off > sp_off, "Helix must out-serve SP on LLaMA-70B"
    else:
        # On 30B every type serves its own replicas; the serving gap is
        # small at our scaled trace (see EXPERIMENTS.md deviations), so
        # only a sanity band is asserted end to end.
        assert helix_off > 0.7 * swarm_off
    factor_sp = helix_off / sp_off
    factor_swarm = helix_off / swarm_off
    text += (
        f"\noffline helix/swarm = {factor_swarm:.2f}x (paper ~2.1x), "
        f"helix/sp = {factor_sp:.2f}x (paper: 1.04x on 30B, 1.86x on 70B)"
    )
    report(f"fig6_single_cluster_{model_name}", text)
