"""Fig. 8: the 42-node, 7-GPU-type cluster — Helix vs Swarm vs SP vs SP+.

Paper shape: V100 / T4 / 2xT4 nodes cannot form pipelines of their own, so
plain SP strands them and loses 2.9-3.3x to Helix; SP+ (one extra mixed
pipeline) recovers part of it (still 2.2-2.5x behind); Swarm is 1.4-1.5x
behind. LLaMA-70B only.
"""

from benchmarks.conftest import BENCH_PROFILER, SIM_MAX_TIME, SIM_WARMUP
from repro.bench.runner import run_offline, run_online
from repro.bench.tables import format_table
from repro.models.specs import LLAMA_70B

METHODS = ("helix", "swarm", "sp", "sp+")
SCHEDULER_OF = {"helix": "helix", "swarm": "swarm", "sp": "fixed", "sp+": "fixed"}


def serve(planner_cache, trace, method, setting):
    cluster = planner_cache.cluster("hetero-42")
    planner_result = planner_cache.plan("hetero-42", "llama-70b", method)
    runner = run_offline if setting == "offline" else run_online
    return runner(
        cluster, LLAMA_70B, planner_result, SCHEDULER_OF[method], trace,
        max_time=SIM_MAX_TIME, warmup=SIM_WARMUP, profiler=BENCH_PROFILER, placement_method=method,
    )


def test_fig8_high_heterogeneity(benchmark, planner_cache, bench_trace, report):
    results = {}
    for setting in ("offline", "online"):
        for method in METHODS:
            results[(setting, method)] = serve(
                planner_cache, bench_trace, method, setting
            )

    benchmark.pedantic(
        lambda: serve(planner_cache, bench_trace, "helix", "offline"),
        rounds=1, iterations=1,
    )

    rows = []
    for (setting, method), result in results.items():
        m = result.metrics
        used = len(result.planner.placement.used_nodes)
        rows.append(
            [setting, method, round(m.decode_throughput, 1),
             round(m.prompt_latency.p50, 2), round(m.decode_latency.p50, 3),
             used]
        )
    text = format_table(
        ["setting", "method", "decode_tok_s", "prompt_p50_s", "decode_p50_s",
         "nodes_used"],
        rows,
    )

    off = {m: results[("offline", m)].metrics.decode_throughput for m in METHODS}
    # Paper ordering: Helix > SP+ > SP, Helix > Swarm, SP+ > SP.
    assert off["helix"] > off["sp"], "Helix must beat SP"
    assert off["helix"] > off["swarm"], "Helix must beat Swarm"
    assert off["sp+"] >= off["sp"], "the mixed pipeline must not hurt SP"
    # SP strands the single-type stragglers; Helix uses every node.
    sp_used = len(results[("offline", "sp")].planner.placement.used_nodes)
    helix_used = len(results[("offline", "helix")].planner.placement.used_nodes)
    assert helix_used > sp_used
    text += (
        f"\noffline helix/swarm {off['helix']/off['swarm']:.2f}x (paper 1.37x), "
        f"helix/sp {off['helix']/off['sp']:.2f}x (paper 2.91x), "
        f"helix/sp+ {off['helix']/off['sp+']:.2f}x (paper 2.24x)"
    )
    report("fig8_high_heterogeneity", text)
