"""Table 8: MILP problem size with and without cluster pruning.

Paper: pruning to average degree 12 removes 50%/72% of the connections and
shrinks the problem by 36%/46% for the 24-/42-node clusters. We report our
own variable/constraint counts for the same clusters and assert pruning
shrinks both, with more to gain on the bigger cluster.
"""

from repro.bench.tables import format_table
from repro.cluster import Profiler, high_heterogeneity_42, single_cluster_24
from repro.models.specs import LLAMA_70B
from repro.placement import HelixMilpPlanner, prune_cluster


def problem_sizes(prune_degree):
    rows = []
    for name, factory in (("24-node", single_cluster_24), ("42-node", high_heterogeneity_42)):
        cluster = factory()
        planner = HelixMilpPlanner(cluster, LLAMA_70B, Profiler(), hints=None)
        full = planner.build_formulation(cluster)
        pruned_cluster = prune_cluster(cluster, prune_degree)
        pruned = planner.build_formulation(pruned_cluster)
        rows.append(
            {
                "cluster": name,
                "full_links": len(cluster.links),
                "pruned_links": len(pruned_cluster.links),
                "full_vars": full.problem.num_variables,
                "full_cstr": full.problem.num_constraints,
                "pruned_vars": pruned.problem.num_variables,
                "pruned_cstr": pruned.problem.num_constraints,
            }
        )
    return rows


def test_table8_problem_size(benchmark, report):
    rows = benchmark.pedantic(problem_sizes, args=(12,), rounds=1, iterations=1)
    table_rows = []
    for row in rows:
        var_reduction = 1 - row["pruned_vars"] / row["full_vars"]
        cstr_reduction = 1 - row["pruned_cstr"] / row["full_cstr"]
        table_rows.append(
            [row["cluster"],
             f"{row['pruned_vars']} var {row['pruned_cstr']} cstr",
             f"{row['full_vars']} var {row['full_cstr']} cstr",
             f"{var_reduction:.0%}/{cstr_reduction:.0%}"]
        )
        assert row["pruned_vars"] < row["full_vars"]
        assert row["pruned_cstr"] < row["full_cstr"]
        assert row["pruned_links"] < row["full_links"]
    # The 42-node cluster gains more from pruning than the 24-node one
    # (paper: 46% vs 36% problem-size reduction).
    red24 = 1 - rows[0]["pruned_vars"] / rows[0]["full_vars"]
    red42 = 1 - rows[1]["pruned_vars"] / rows[1]["full_vars"]
    assert red42 > red24
    text = format_table(
        ["cluster", "with_pruning", "without_pruning", "reduction"], table_rows
    )
    text += "\n(paper: 876/1122 vs 1376/1848 for 24-node; 2144/2772 vs 4004/5502 for 42-node)"
    report("table8_problem_size", text)
