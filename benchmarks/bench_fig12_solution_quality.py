"""Fig. 12: best incumbent and best bound vs MILP solving time (§6.9).

Paper setup: LLaMA-30B on 4 L4 + 6 T4. Gurobi finds the optimal placement
within minutes but needs over an hour to *prove* optimality; the incumbent
curve rises quickly and the upper-bound curve tightens slowly. We record
the same two curves from our branch-and-bound's trajectory and assert the
qualitative shape: early high-quality incumbents, monotone incumbents, a
bound that only tightens, and a final gap within tolerance of the best
incumbent found.
"""

import math

from repro.bench.tables import format_table
from repro.cluster import Profiler, small_cluster_fig12
from repro.models.specs import LLAMA_30B
from repro.placement import HelixMilpPlanner


def solve_with_trajectory():
    planner = HelixMilpPlanner(
        small_cluster_fig12(), LLAMA_30B, Profiler(),
        backend="bnb", time_limit=30.0, mip_rel_gap=0.01, hints="auto",
    )
    result = planner.plan()
    return planner, result


def test_fig12_solution_quality(benchmark, report):
    planner, result = benchmark.pedantic(
        solve_with_trajectory, rounds=1, iterations=1
    )
    trajectory = planner.last_trajectory
    assert trajectory, "branch-and-bound must record a trajectory"

    incumbents = [
        (p.elapsed, p.incumbent) for p in trajectory if not math.isnan(p.incumbent)
    ]
    bounds = [(p.elapsed, p.bound) for p in trajectory if math.isfinite(p.bound)]
    assert incumbents, "at least one incumbent must be found"
    # Incumbents never regress; bounds never loosen.
    values = [v for _, v in incumbents]
    assert values == sorted(values)
    bound_values = [b for _, b in bounds]
    assert all(a >= b - 1e-6 for a, b in zip(bound_values, bound_values[1:]))
    # The first incumbent (heuristic warm start) is already decent, and the
    # final incumbent is at least as good — the paper's "high-quality
    # solutions emerge early" observation.
    final_value = values[-1]
    assert values[0] >= 0.5 * final_value
    # Final incumbent within the solver's reported bound.
    assert final_value <= result.milp.bound + 1e-6

    rows = [
        [f"{elapsed:.2f}", f"{value:.1f}"] for elapsed, value in incumbents[:12]
    ]
    text = "incumbent trajectory (s, tokens/s):\n"
    text += format_table(["elapsed_s", "incumbent"], rows)
    text += f"\nfinal: incumbent {final_value:.1f}, bound {result.milp.bound:.1f}, "
    text += f"gap {result.milp.gap:.1%}, nodes {result.milp.node_count}"
    report("fig12_solution_quality", text)
