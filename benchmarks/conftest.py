"""Shared infrastructure for the paper-reproduction benchmarks.

Every module regenerates one table or figure of the paper. Serving runs use
a length-scaled trace (scale 0.25) so the pure-Python simulator finishes in
seconds per cell; scaling input and output lengths together preserves the
prompt/decode token ratio, which is what drives every relative comparison
the paper makes. Planner results are cached per (cluster, model, method)
for the whole benchmark session, mirroring the paper's "model placement
runs once per cluster" design.

Results are printed AND appended to ``benchmarks/results/<figure>.txt`` so
``pytest benchmarks/ --benchmark-only`` leaves reviewable artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.runner import make_planner
from repro.cluster import (
    Profiler,
    geo_distributed_24,
    high_heterogeneity_42,
    single_cluster_24,
    small_cluster_fig12,
)
from repro.models.specs import LLAMA_30B, LLAMA_70B
from repro.trace import AzureTraceConfig, synthesize_azure_trace

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

CLUSTERS = {
    "single-24": single_cluster_24,
    "geo-24": geo_distributed_24,
    "hetero-42": high_heterogeneity_42,
    "small-10": small_cluster_fig12,
}

MODELS = {"llama-30b": LLAMA_30B, "llama-70b": LLAMA_70B}

#: Serving-run defaults shared by all figure benchmarks.
TRACE_SCALE = 0.25
TRACE_REQUESTS = 240
SIM_MAX_TIME = 600.0
SIM_WARMUP = 30.0

#: Shared profiler. KV capacity scales with the trace length scale so that
#: per-node request concurrency — what KV pressure actually limits — matches
#: the full-scale system (see module docstring).
BENCH_PROFILER = Profiler(kv_capacity_scale=TRACE_SCALE)

#: Helix planner budgets by cluster size (seconds).
HELIX_BUDGETS = {
    "single-24": dict(prune_degree=6, time_limit=20.0, lns_rounds=9,
                      lns_window=8, lns_time_limit=10.0, mip_rel_gap=0.03),
    "geo-24": dict(prune_degree=6, time_limit=20.0, lns_rounds=9,
                   lns_window=8, lns_time_limit=10.0, mip_rel_gap=0.03),
    "hetero-42": dict(prune_degree=6, time_limit=25.0, lns_rounds=9,
                      lns_window=8, lns_time_limit=12.0, mip_rel_gap=0.03),
    "small-10": dict(time_limit=30.0, mip_rel_gap=0.02),
}


class PlannerCache:
    """Session-scoped cache of planner results."""

    def __init__(self) -> None:
        self._clusters = {}
        self._results = {}

    def cluster(self, name: str):
        if name not in self._clusters:
            self._clusters[name] = CLUSTERS[name]()
        return self._clusters[name]

    def plan(self, cluster_name: str, model_name: str, method: str):
        key = (cluster_name, model_name, method)
        if key not in self._results:
            cluster = self.cluster(cluster_name)
            model = MODELS[model_name]
            kwargs = {}
            if method == "helix":
                kwargs = dict(HELIX_BUDGETS[cluster_name])
            planner = make_planner(method, cluster, model, BENCH_PROFILER, **kwargs)
            self._results[key] = planner.plan()
        return self._results[key]


@pytest.fixture(scope="session")
def planner_cache() -> PlannerCache:
    return PlannerCache()


@pytest.fixture(scope="session")
def bench_trace():
    """The shared, scaled serving trace."""
    return synthesize_azure_trace(
        AzureTraceConfig(num_requests=TRACE_REQUESTS, seed=7, scale=TRACE_SCALE)
    )


@pytest.fixture(scope="session")
def report():
    """Append result blocks to per-figure files under benchmarks/results."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(figure: str, text: str) -> None:
        path = RESULTS_DIR / f"{figure}.txt"
        path.write_text(text + "\n")
        print(f"\n[{figure}]\n{text}")

    return write
