"""Fig. 5: statistics of the (synthetic) Azure Conversation trace.

Published statistics of the pruned dataset: 16657 requests, mean input 763
(<= 2048), mean output 232 (<= 1024), right-skewed length marginals, and a
diurnal arrival-rate curve. The benchmark regenerates the full-size trace
and prints the length histograms alongside the published means.
"""

from repro.trace import (
    AzureTraceConfig,
    diurnal_arrivals,
    synthesize_azure_trace,
    trace_statistics,
)


def full_trace():
    return synthesize_azure_trace(AzureTraceConfig(num_requests=16657, seed=0))


def histogram(values, bins, width):
    counts = [0] * bins
    for value in values:
        counts[min(value // width, bins - 1)] += 1
    return counts


def test_fig5_trace_stats(benchmark, report):
    trace = benchmark(full_trace)
    stats = trace_statistics(trace)
    assert abs(stats["mean_input"] - 763) / 763 < 0.05
    assert abs(stats["mean_output"] - 232) / 232 < 0.05
    assert stats["max_input"] <= 2048 and stats["max_output"] <= 1024

    input_hist = histogram([r.input_len for r in trace], bins=8, width=256)
    output_hist = histogram([r.output_len for r in trace], bins=8, width=128)
    stamped = diurnal_arrivals(trace[:2000], mean_rate=5.0, seed=3, period=120.0)
    minute_counts = {}
    for request in stamped:
        minute_counts[int(request.arrival_time // 60)] = (
            minute_counts.get(int(request.arrival_time // 60), 0) + 1
        )
    rate_series = [minute_counts[m] for m in sorted(minute_counts)]

    lines = [
        f"requests: {stats['num_requests']}  "
        f"mean input {stats['mean_input']:.0f} (paper 763)  "
        f"mean output {stats['mean_output']:.0f} (paper 232)",
        "input length histogram (256-token bins):  "
        + " ".join(str(c) for c in input_hist),
        "output length histogram (128-token bins): "
        + " ".join(str(c) for c in output_hist),
        "arrivals per minute (diurnal shape):      "
        + " ".join(str(c) for c in rate_series[:12]),
    ]
    # Arrival rate must visibly oscillate (diurnal pattern, Fig. 5b).
    assert max(rate_series) > 1.2 * min(rate_series[:-1] or [1])
    report("fig5_trace_stats", "\n".join(lines))
