"""Perf: online dynamics — churn, fault injection, and live replanning.

The `repro.online` subsystem closes the loop the paper leaves open: a
production cluster loses nodes mid-serving and the plan must follow. The
scenarios here exercise that loop at full size and write
``BENCH_online.json`` at the repo root:

* scripted fig12-small churn (headline) — plan LLaMA-30B on the Fig. 12
  cluster, kill the planned node carrying the most flow mid-run, and
  measure the windowed-goodput recovery ratio (target >= 0.7), the
  time-to-recovery, and the warm-started incremental LNS replanning
  latency (target < 2 s wall);
* seeded random-churn soak — nodes failing and recovering stochastically
  for 120 simulated seconds while the controller keeps replanning;
  records surviving goodput vs. the pre-churn baseline and the
  replanning-latency distribution.

Run directly (``python benchmarks/bench_online_churn.py``) or through
pytest (``pytest benchmarks/bench_online_churn.py``).
"""

import pytest

from repro.bench.perftrack import (
    DEFAULT_ONLINE_OUTPUT,
    PerfTracker,
    bench_online_churn,
    bench_online_soak,
)

RECOVERY_TARGET = 0.7
REPLAN_WALL_TARGET_S = 2.0


def run_full() -> PerfTracker:
    """Run the full-size configuration and write ``BENCH_online.json``."""
    tracker = PerfTracker(label="online-full")
    bench_online_churn(tracker)
    bench_online_soak(tracker)
    tracker.write(DEFAULT_ONLINE_OUTPUT)
    return tracker


def summarize(tracker: PerfTracker) -> str:
    return "\n".join(
        f"{name}: {value:.3f}" for name, value in tracker.derived.items()
    )


@pytest.mark.perf
def test_perf_online(report):
    tracker = run_full()
    report("perf_online", summarize(tracker))
    derived = tracker.derived
    ratio = derived["online_recovery_ratio"]
    assert ratio >= RECOVERY_TARGET, (
        f"windowed goodput only recovered to {ratio:.2f} of its pre-failure "
        f"level (target {RECOVERY_TARGET})"
    )
    assert derived["online_replan_wall_s"] < REPLAN_WALL_TARGET_S, (
        "warm-started LNS replanning took "
        f"{derived['online_replan_wall_s']:.2f}s "
        f"(target < {REPLAN_WALL_TARGET_S}s)"
    )
    assert derived["online_replan_count"] >= 1
    assert derived["soak_replans_applied"] >= 1
    assert derived["soak_churn_goodput"] > 0, "serving died under churn"


if __name__ == "__main__":
    print(summarize(run_full()))
