"""Perf: flat-array max-flow kernel and incremental placement evaluation.

Unlike the figure benchmarks, this module tracks *our own* performance: the
planner evaluates thousands of candidate placements by max-flow (§4.3,
§4.5), so the evaluate-placement loop must run at array speed. Three
scenarios are timed and written to ``BENCH_flow.json`` at the repo root:

* kernel reuse — ``set_capacity`` + re-solve on one ``FlowNetwork`` vs.
  rebuilding the network for every solve;
* placement evaluation (headline, target >= 5x) — one ``FlowGraph``
  re-targeted with ``reevaluate`` across an LNS-like candidate stream vs.
  rebuilding the graph abstraction per candidate;
* end-to-end Helix planning with the incremental evaluator on and off
  (MILP time dominates, so the interesting number is the flow-eval split).

Run directly (``python benchmarks/bench_perf_flow.py``) or through pytest
(``pytest benchmarks/bench_perf_flow.py``).
"""

import pytest

from repro.bench.perftrack import (
    PerfTracker,
    bench_kernel_reuse,
    bench_placement_evaluation,
    bench_planner,
)

EVAL_SPEEDUP_TARGET = 5.0


def run_full(include_planner: bool = True) -> PerfTracker:
    """Run the full-size configuration and write ``BENCH_flow.json``."""
    tracker = PerfTracker(label="flow-full")
    bench_kernel_reuse(tracker)
    bench_placement_evaluation(tracker)
    if include_planner:
        bench_planner(tracker)
    tracker.write()
    return tracker


def summarize(tracker: PerfTracker) -> str:
    lines = [
        f"{t.name}: best {t.best_s * 1e3:.1f} ms over {t.repeats} laps"
        for t in tracker.timings
    ]
    lines += [f"{name}: {value:.3f}" for name, value in tracker.derived.items()]
    return "\n".join(lines)


@pytest.mark.perf
def test_perf_flow(report):
    tracker = run_full()
    report("perf_flow", summarize(tracker))
    speedup = tracker.derived["placement_eval_speedup"]
    assert speedup >= EVAL_SPEEDUP_TARGET, (
        f"repeated placement evaluation only {speedup:.2f}x faster than the "
        f"rebuild-per-candidate baseline (target {EVAL_SPEEDUP_TARGET}x)"
    )
    assert tracker.derived["kernel_reuse_speedup"] > 1.0


if __name__ == "__main__":
    print(summarize(run_full()))
