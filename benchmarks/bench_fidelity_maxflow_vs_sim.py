"""§6.3 fidelity companion: simulator throughput vs the max-flow bound.

The paper validates its simulator against the hardware prototype (<5%
error); we have no hardware, so the analogous internal-consistency check is
that simulated *total token* throughput approaches — and never exceeds —
the placement's max-flow bound when the cluster is saturated. Decode-only
throughput is then the decode share of that bound (the flow counts prompt
and decode tokens alike).
"""

from benchmarks.conftest import SIM_WARMUP
from repro.bench.runner import run_offline
from repro.bench.tables import format_table
from repro.models.specs import LLAMA_70B
from repro.trace import AzureTraceConfig, synthesize_azure_trace


def saturation_run(planner_cache):
    cluster = planner_cache.cluster("single-24")
    planner_result = planner_cache.plan("single-24", "llama-70b", "petals")
    trace = synthesize_azure_trace(
        AzureTraceConfig(num_requests=600, seed=11, scale=0.25)
    )
    result = run_offline(
        cluster, LLAMA_70B, planner_result, "helix", trace,
        max_time=1200.0, warmup=SIM_WARMUP,
    )
    return planner_result, result, trace


def test_fidelity_maxflow_vs_sim(benchmark, planner_cache, report):
    planner_result, result, trace = benchmark.pedantic(
        lambda: saturation_run(planner_cache), rounds=1, iterations=1
    )
    metrics = result.metrics
    bound = planner_result.max_throughput

    total_tokens = sum(r.total_tokens for r in trace)
    decode_share = sum(r.output_len for r in trace) / total_tokens
    decode_bound = bound * decode_share

    # Simulated decode throughput must stay under the flow bound and reach
    # a substantial fraction of it at saturation.
    assert metrics.decode_throughput <= decode_bound * 1.05
    efficiency = metrics.decode_throughput / decode_bound
    assert efficiency > 0.4, f"simulator far from flow bound: {efficiency:.2f}"

    rows = [
        ["max-flow bound (all tokens)", round(bound, 1)],
        ["decode share of trace", round(decode_share, 3)],
        ["decode bound", round(decode_bound, 1)],
        ["simulated decode throughput", round(metrics.decode_throughput, 1)],
        ["efficiency vs bound", round(efficiency, 3)],
        ["kv overflow events", metrics.kv_overflow_events],
    ]
    report(
        "fidelity_maxflow_vs_sim",
        format_table(["quantity", "value"], rows),
    )
