"""Table 1: minimum GPUs required to serve each LLM per GPU type.

Paper values (half of VRAM for weights): LLaMA-2 70B -> 12 L4 / 7 A100 /
4 H100; GPT-3 -> 30/18/9; Grok-1 -> 53/32/16; LLaMA-3 405B -> 68/41/21.
Our memory model reproduces every cell exactly (asserted, not just printed).
"""

from repro.bench.tables import TABLE1_PAPER, format_table, table1_min_gpus


def test_table1_min_gpus(benchmark, report):
    rows = benchmark(table1_min_gpus)
    for row in rows:
        for gpu in ("L4", "A100-40G", "H100"):
            assert row[gpu] == TABLE1_PAPER[(row["model"], gpu)]
    text = format_table(
        ["model", "L4", "A100-40G", "H100"],
        [[r["model"], r["L4"], r["A100-40G"], r["H100"]] for r in rows],
    )
    report("table1_min_gpus", text + "\n(all cells match the paper exactly)")
