"""Fig. 1: why placement, partition, and scheduling must be co-optimized.

The paper's motivating example: an A100 in region 1; an L4 and three T4s
in region 2; slow network between regions. Three strategies:

* (b) uniform partition + balanced device assignment — the last stage has
  spare compute that the weaker middle stage can never feed;
* (c) balanced FLOPs ignoring the network — the A100 serves a private
  prefix and every request crosses the slow inter-region link, which
  congests;
* (d) network-aware co-optimization (Helix's MILP) — splits the workload
  so the slow link is off the critical path.

We evaluate each placement's max flow on the same cluster and assert the
paper's ordering (d) >= (c) and (d) > (b).
"""

from repro.bench.tables import format_table
from repro.cluster import Profiler, toy_cluster_fig1
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import placement_max_flow
from repro.models.specs import ModelSpec
from repro.placement import HelixMilpPlanner

# A six-layer stand-in with LLaMA-70B-sized layers, so activations are the
# paper's 16 KB and the 100 Mb/s inter-region link really binds.
FIG1_MODEL = ModelSpec(
    name="fig1-6L",
    num_layers=6,
    hidden_size=8192,
    num_heads=64,
    num_kv_heads=8,
    intermediate_size=28672,
)


def uniform_partition_placement() -> ModelPlacement:
    """Fig. 1b: three uniform stages, devices balanced per stage."""
    return ModelPlacement.from_intervals(
        6,
        {
            "a100-0": (0, 2),
            "t4-0": (2, 4),
            "t4-1": (2, 4),
            "l4-0": (4, 6),
            "t4-2": (4, 6),
        },
    )


def balanced_flops_placement() -> ModelPlacement:
    """Fig. 1c: A100 privately serves a prefix sized to its FLOPs share."""
    return ModelPlacement.from_intervals(
        6,
        {
            "a100-0": (0, 4),
            "l4-0": (4, 6),
            "t4-0": (4, 6),
            "t4-1": (4, 6),
            "t4-2": (4, 6),
        },
    )


def evaluate_all():
    cluster = toy_cluster_fig1()
    profiler = Profiler()
    uniform = placement_max_flow(
        cluster, FIG1_MODEL, uniform_partition_placement(), profiler
    )
    balanced = placement_max_flow(
        cluster, FIG1_MODEL, balanced_flops_placement(), profiler
    )
    helix = HelixMilpPlanner(
        cluster, FIG1_MODEL, profiler, time_limit=30.0, mip_rel_gap=0.02
    ).plan()
    return cluster, uniform, balanced, helix


def test_fig1_motivation(benchmark, report):
    cluster, uniform, balanced, helix = benchmark.pedantic(
        evaluate_all, rounds=1, iterations=1
    )
    rows = [
        ["(b) uniform partition", round(uniform, 1)],
        ["(c) balanced FLOPs", round(balanced, 1)],
        ["(d) network-aware MILP", round(helix.max_throughput, 1)],
    ]
    text = format_table(["strategy", "maxflow_tok_s"], rows)
    # Paper's ordering: co-optimization dominates both naive strategies.
    assert helix.max_throughput >= balanced - 1e-6
    assert helix.max_throughput > uniform
    text += "\nhelix placement:\n" + helix.placement.describe()
    report("fig1_motivation", text)
