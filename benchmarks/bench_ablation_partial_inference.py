"""Ablation: partial inference on vs off (§4.4, searched in §6.2).

Partial inference lets a request entering node ``c_j`` mid-interval infer
only ``[e_i, e_j)``, which legalizes overlapping-interval placements. The
paper's Helix setup "searches w/ and w/o partial inference" and keeps the
better plan. We verify that enabling it never reduces — and on clusters
whose VRAM forces overlapping windows, strictly increases — the placement's
max flow.
"""

from repro.bench.tables import format_table
from repro.cluster import Profiler, small_cluster_fig12
from repro.models.specs import LLAMA_30B
from repro.placement import HelixMilpPlanner, PetalsPlanner


def run_ablation():
    cluster = small_cluster_fig12()
    profiler = Profiler()
    results = {}
    for label, partial in (("partial_on", True), ("partial_off", False)):
        planner = HelixMilpPlanner(
            cluster, LLAMA_30B, profiler,
            partial_inference=partial, time_limit=25.0, mip_rel_gap=0.03,
        )
        results[label] = planner.plan()
    # Petals' greedy overlapping windows need partial inference to route at
    # all on most clusters — measure its flow under both validity rules.
    petals = PetalsPlanner(cluster, LLAMA_30B, profiler).plan()
    petals_strict = PetalsPlanner(
        cluster, LLAMA_30B, profiler, partial_inference=False
    ).plan()
    results["petals_partial_on"] = petals
    results["petals_partial_off"] = petals_strict
    return results


def test_ablation_partial_inference(benchmark, report):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [label, round(result.max_throughput, 1)]
        for label, result in results.items()
    ]
    text = format_table(["variant", "maxflow_tok_s"], rows)
    assert (
        results["partial_on"].max_throughput
        >= results["partial_off"].max_throughput - 1e-6
    )
    assert (
        results["petals_partial_on"].max_throughput
        >= results["petals_partial_off"].max_throughput - 1e-6
    )
    report("ablation_partial_inference", text)
