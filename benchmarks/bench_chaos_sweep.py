"""Nightly chaos sweep: gray-failure scenarios with detection, many seeds.

Tier-1 runs a three-seed slice of the chaos family (see
``tests/test_chaos.py``); this script is the many-seed soak the scheduled
CI job runs:

* every seed in ``--seeds`` of the ``chaos`` family at ``--size``, each
  address verified end-to-end (invariants incl. request conservation,
  per-seed determinism, the flow differential oracle);
* headline robustness numbers aggregated across the sweep — MTTD
  mean/max, MTTR (time until goodput regained its recovery threshold),
  detector false positives, shed/lost rates — written both into the
  report and (``--headline-out``) as a small standalone JSON for perf
  tracking;
* a JSON report with per-address status; every failing address carries
  its violations and the exact one-line repro command. Crashes inside
  one address are converted to violations, so the sweep always finishes
  and always writes its report.

Exit status is 1 when any address fails (0 = clean sweep), so CI fails
the job and uploads the failing-seed artifact.

Run: ``PYTHONPATH=src python benchmarks/bench_chaos_sweep.py
[--seeds 25] [--size full]
[--output benchmarks/results/chaos_sweep.json]
[--headline-out BENCH_chaos.json]``
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
import traceback
from pathlib import Path

from repro.scenarios import CHAOS_FAMILY
from repro.testkit import verify_scenario
from repro.testkit.invariants import Violation


def _mean(samples: list[float]) -> float | None:
    return round(sum(samples) / len(samples), 4) if samples else None


def sweep(seeds: int, size: str) -> dict:
    """Run the chaos sweep; returns the JSON-serializable report."""
    rows = []
    failures = 0
    mttd_means: list[float] = []
    mttd_maxes: list[float] = []
    mttr_samples: list[float] = []
    recovery_ratios: list[float] = []
    false_positives = 0
    shed = lost = submitted = finished = 0
    started = time.perf_counter()
    for seed in range(seeds):
        t0 = time.perf_counter()
        repro = (
            "PYTHONPATH=src python -m repro.testkit "
            f"{CHAOS_FAMILY} {seed} --size {size}"
        )
        detections = {}
        # A crash in one address must not abort the sweep: convert it to
        # a violation so the report (and its repro command) still lands
        # in the artifact.
        try:
            report = verify_scenario(
                CHAOS_FAMILY, seed, size,
                determinism=True, flow_differential=True,
            )
            violations = list(report.violations)
            repro = report.scenario.repro_command()
            metrics = report.metrics
            if metrics is not None:
                shed += metrics.requests_shed
                lost += metrics.requests_lost
                submitted += metrics.requests_submitted
                finished += metrics.requests_finished
            disruption = report.disruption
            if disruption is not None:
                false_positives += disruption.false_positives
                detections = {
                    "mttd_mean_s": None,
                    "false_positives": disruption.false_positives,
                }
                if not math.isnan(disruption.mttd_mean):
                    mttd_means.append(disruption.mttd_mean)
                    mttd_maxes.append(disruption.mttd_max)
                    detections["mttd_mean_s"] = round(
                        disruption.mttd_mean, 4
                    )
                if not math.isnan(disruption.time_to_recovery):
                    mttr_samples.append(disruption.time_to_recovery)
                if not math.isnan(disruption.recovery_ratio):
                    recovery_ratios.append(disruption.recovery_ratio)
        except Exception:
            violations = [Violation(
                "sweep_crash",
                f"unhandled exception:\n{traceback.format_exc()}",
            )]
        row = {
            "family": CHAOS_FAMILY,
            "seed": seed,
            "size": size,
            "ok": not violations,
            "seconds": round(time.perf_counter() - t0, 3),
            "repro": repro,
            **detections,
        }
        if violations:
            failures += 1
            row["violations"] = [
                {"invariant": v.invariant, "detail": v.detail}
                for v in violations
            ]
            print(f"FAIL {CHAOS_FAMILY}/{seed}: {len(violations)} violations")
            for v in violations:
                print(f"  {v}")
            print(f"  reproduce: {row['repro']}")
        else:
            print(f"ok   {CHAOS_FAMILY}/{seed} {row['seconds']}s")
        rows.append(row)

    headline = {
        "addresses": len(rows),
        "failures": failures,
        "addresses_with_detections": len(mttd_means),
        "mttd_mean_s": _mean(mttd_means),
        "mttd_max_s": round(max(mttd_maxes), 4) if mttd_maxes else None,
        "mttr_mean_s": _mean(mttr_samples),
        "recovery_ratio_mean": _mean(recovery_ratios),
        "false_positives": false_positives,
        "requests_submitted": submitted,
        "requests_finished": finished,
        "requests_shed": shed,
        "requests_lost": lost,
        "shed_rate": round(shed / submitted, 6) if submitted else None,
        "lost_rate": round(lost / submitted, 6) if submitted else None,
    }
    return {
        "family": CHAOS_FAMILY,
        "size": size,
        "seeds": seeds,
        "failures": failures,
        "failing_addresses": [
            {"family": r["family"], "seed": r["seed"], "repro": r["repro"]}
            for r in rows if not r["ok"]
        ],
        "headline": headline,
        "wall_seconds": round(time.perf_counter() - started, 3),
        "results": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=25,
                        help="chaos seeds to sweep (0..N-1)")
    parser.add_argument("--size", default="full", choices=("smoke", "full"))
    parser.add_argument(
        "--output",
        default="benchmarks/results/chaos_sweep.json",
        help="where to write the full JSON report",
    )
    parser.add_argument(
        "--headline-out", default=None,
        help="also write just the headline numbers (e.g. BENCH_chaos.json)",
    )
    args = parser.parse_args(argv)

    report = sweep(args.seeds, args.size)
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    if args.headline_out:
        headline_doc = {
            "bench": "chaos_sweep",
            "size": report["size"],
            "seeds": report["seeds"],
            "derived": report["headline"],
        }
        Path(args.headline_out).write_text(
            json.dumps(headline_doc, indent=2) + "\n"
        )
    print(
        f"\n{len(report['results'])} addresses, "
        f"{report['failures']} failing, "
        f"{report['wall_seconds']}s -> {out}"
    )
    head = report["headline"]
    print(
        f"headline: mttd_mean={head['mttd_mean_s']}s "
        f"mttr_mean={head['mttr_mean_s']}s "
        f"false_positives={head['false_positives']} "
        f"shed_rate={head['shed_rate']} lost_rate={head['lost_rate']}"
    )
    return 1 if report["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
