"""Table 3: the GPU property catalog (datasheet values used by the model)."""

from repro.bench.tables import format_table, table3_gpu_catalog


def test_table3_gpu_catalog(benchmark, report):
    rows = benchmark(table3_gpu_catalog)
    by_gpu = {r["gpu"]: r for r in rows}
    assert by_gpu["H100"]["fp16_tflops"] == 1979
    assert by_gpu["A100-40G"]["fp16_tflops"] == 312
    assert by_gpu["L4"]["fp16_tflops"] == 242
    assert by_gpu["T4"]["fp16_tflops"] == 65
    assert by_gpu["A100-40G"]["bandwidth_gbs"] == 1555
    text = format_table(
        ["gpu", "fp16_tflops", "memory_gb", "bandwidth_gbs", "power_w", "price_usd"],
        [
            [r["gpu"], r["fp16_tflops"], r["memory_gb"], r["bandwidth_gbs"],
             r["power_w"], r["price_usd"]]
            for r in rows
        ],
    )
    report("table3_gpu_catalog", text)
