"""Extended scenario sweep: the full verification matrix, many seeds.

Thin wrapper over the ``scenario-sweep`` experiment in
:mod:`repro.exp` — the grid expansion, process-parallel execution
(``--workers``), content-hash resume, and report aggregation all live
there; this script only preserves the historical CLI. Equivalent to::

    PYTHONPATH=src python -m repro.exp run scenario-sweep \
        [--workers 8] [--seeds 20] [--size full] [--milp-oracles] \
        [--families full_mesh geo_regions] \
        [--output benchmarks/results/scenario_sweep.json]

Exit status is 1 when any address fails (0 = clean sweep), so CI fails
the job and uploads the failing-seed artifact. Re-invoking after a kill
resumes from the per-cell records under ``benchmarks/results/exp``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.exp.__main__ import main as exp_main  # noqa: E402
from repro.scenarios import SCENARIO_FAMILIES  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--families", nargs="+", default=list(SCENARIO_FAMILIES),
        choices=SCENARIO_FAMILIES,
    )
    parser.add_argument("--seeds", type=int, default=20,
                        help="seeds per family (0..N-1)")
    parser.add_argument("--size", default="full", choices=("smoke", "full"))
    parser.add_argument("--milp-oracles", action="store_true",
                        help="also run the MILP differential oracles")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = inline)")
    parser.add_argument("--force", action="store_true",
                        help="re-execute cells even if their records exist")
    parser.add_argument(
        "--output",
        default="benchmarks/results/scenario_sweep.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    forwarded = [
        "run", "scenario-sweep",
        "--seeds", str(args.seeds),
        "--size", args.size,
        "--workers", str(args.workers),
        "--families", *args.families,
        "--output", args.output,
    ]
    if args.milp_oracles:
        forwarded.append("--milp-oracles")
    if args.force:
        forwarded.append("--force")
    return exp_main(forwarded)


if __name__ == "__main__":
    sys.exit(main())
