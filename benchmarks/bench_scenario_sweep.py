"""Extended scenario sweep: the full verification matrix, many seeds.

Tier-1 runs a smoke-sized slice of the matrix (see
``tests/test_scenario_sweep.py``); this script is the many-seed sweep the
scheduled CI job runs and developers use to soak a change:

* every family x every seed in ``--seeds``, at ``--size`` (default
  ``full``), with determinism and the flow differential oracle;
* optionally (``--milp-oracles``) the MILP differential oracles on every
  address;
* a JSON report with per-address status; every failing address carries
  its violations and the exact one-line repro command. Crashes inside
  one address are converted to violations, so the sweep always finishes
  and always writes its report.

Exit status is 1 when any address fails (0 = clean sweep), so CI fails
the job and uploads the failing-seed artifact.

Run: ``PYTHONPATH=src python benchmarks/bench_scenario_sweep.py
[--seeds 20] [--size full] [--families full_mesh geo_regions]
[--milp-oracles] [--output benchmarks/results/scenario_sweep.json]``
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import traceback

from repro.scenarios import SCENARIO_FAMILIES
from repro.testkit import check_milp_oracles, verify_scenario
from repro.testkit.invariants import Violation


def sweep(
    families: list[str],
    seeds: int,
    size: str,
    milp_oracles: bool,
) -> dict:
    """Run the sweep; returns the JSON-serializable report."""
    rows = []
    failures = 0
    started = time.perf_counter()
    for family in families:
        for seed in range(seeds):
            t0 = time.perf_counter()
            planner = "?"
            planned = 0.0
            repro = (
                "PYTHONPATH=src python -m repro.testkit "
                f"{family} {seed} --size {size}"
            )
            # A crash in one address must not abort the sweep: convert it
            # to a violation so the report (and its repro command) still
            # lands in the artifact.
            try:
                report = verify_scenario(
                    family, seed, size,
                    determinism=True, flow_differential=True,
                )
                violations = list(report.violations)
                planner = report.planner_used
                planned = report.planned_throughput
                repro = report.scenario.repro_command()
                if milp_oracles:
                    violations += check_milp_oracles(family, seed, size)
            except Exception:
                violations = [Violation(
                    "sweep_crash",
                    f"unhandled exception:\n{traceback.format_exc()}",
                )]
            row = {
                "family": family,
                "seed": seed,
                "size": size,
                "ok": not violations,
                "planner": planner,
                "planned_throughput": planned,
                "seconds": round(time.perf_counter() - t0, 3),
                "repro": repro,
            }
            if violations:
                failures += 1
                row["violations"] = [
                    {"invariant": v.invariant, "detail": v.detail}
                    for v in violations
                ]
                print(f"FAIL {family}/{seed}: {len(violations)} violations")
                for v in violations:
                    print(f"  {v}")
                print(f"  reproduce: {row['repro']}")
            else:
                print(
                    f"ok   {family}/{seed} planner={row['planner']} "
                    f"{row['seconds']}s"
                )
            rows.append(row)
    return {
        "size": size,
        "seeds_per_family": seeds,
        "milp_oracles": milp_oracles,
        "total_addresses": len(rows),
        "failures": failures,
        "failing_addresses": [
            {"family": r["family"], "seed": r["seed"], "repro": r["repro"]}
            for r in rows if not r["ok"]
        ],
        "wall_seconds": round(time.perf_counter() - started, 3),
        "results": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--families", nargs="+", default=list(SCENARIO_FAMILIES),
        choices=SCENARIO_FAMILIES,
    )
    parser.add_argument("--seeds", type=int, default=20,
                        help="seeds per family (0..N-1)")
    parser.add_argument("--size", default="full", choices=("smoke", "full"))
    parser.add_argument("--milp-oracles", action="store_true",
                        help="also run the MILP differential oracles")
    parser.add_argument(
        "--output",
        default="benchmarks/results/scenario_sweep.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = sweep(args.families, args.seeds, args.size, args.milp_oracles)
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\n{report['total_addresses']} addresses, "
        f"{report['failures']} failing, "
        f"{report['wall_seconds']}s -> {out}"
    )
    return 1 if report["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
