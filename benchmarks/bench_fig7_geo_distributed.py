"""Fig. 7: geo-distributed serving — Helix vs Swarm vs SP.

Paper shape (same 24 GPUs split over 3 regions, 100 Mb/s / 50 ms between):
every method slows down relative to the single cluster; Helix still beats
Swarm by ~2.3-2.4x (30B) and ~1.9-2.0x (70B) and SP by ~1.6-1.8x on 70B,
and Helix's 70B placement uses a *shallower* pipeline than its single-
cluster one to dodge the slow links.
"""

import pytest

from benchmarks.conftest import BENCH_PROFILER, SIM_MAX_TIME, SIM_WARMUP
from repro.bench.runner import run_offline, run_online
from repro.bench.tables import format_table
from repro.models.specs import LLAMA_30B, LLAMA_70B

MODELS = {"llama-30b": LLAMA_30B, "llama-70b": LLAMA_70B}
METHODS = ("helix", "swarm", "sp")


def serve(planner_cache, trace, model_name, method, setting):
    cluster = planner_cache.cluster("geo-24")
    planner_result = planner_cache.plan("geo-24", model_name, method)
    scheduler = {"helix": "helix", "swarm": "swarm", "sp": "fixed"}[method]
    runner = run_offline if setting == "offline" else run_online
    return runner(
        cluster, MODELS[model_name], planner_result, scheduler, trace,
        max_time=SIM_MAX_TIME, warmup=SIM_WARMUP, profiler=BENCH_PROFILER, placement_method=method,
    )


@pytest.mark.parametrize("model_name", ["llama-30b", "llama-70b"])
def test_fig7_geo_distributed(benchmark, planner_cache, bench_trace, report, model_name):
    results = {}
    for setting in ("offline", "online"):
        for method in METHODS:
            results[(setting, method)] = serve(
                planner_cache, bench_trace, model_name, method, setting
            )

    benchmark.pedantic(
        lambda: serve(planner_cache, bench_trace, model_name, "helix", "offline"),
        rounds=1, iterations=1,
    )

    rows = []
    for (setting, method), result in results.items():
        m = result.metrics
        rows.append(
            [setting, method, round(m.decode_throughput, 1),
             round(m.prompt_latency.p50, 2), round(m.decode_latency.p50, 3),
             round(m.avg_pipeline_depth, 1)]
        )
    text = format_table(
        ["setting", "method", "decode_tok_s", "prompt_p50_s", "decode_p50_s",
         "avg_depth"],
        rows,
    )

    helix = results[("offline", "helix")].metrics.decode_throughput
    swarm = results[("offline", "swarm")].metrics.decode_throughput
    assert helix > swarm, "Helix must out-serve Swarm in geo-distributed"
    text += f"\noffline helix/swarm = {helix / swarm:.2f}x (paper ~1.9-2.4x)"

    if model_name == "llama-70b":
        # Paper: Helix reduces pipeline depth vs Swarm's even partition
        # (28% shallower) to avoid slow cross-region hops.
        helix_depth = results[("offline", "helix")].metrics.avg_pipeline_depth
        swarm_depth = results[("offline", "swarm")].metrics.avg_pipeline_depth
        assert helix_depth < swarm_depth
        text += (
            f"\nhelix depth {helix_depth:.1f} vs swarm depth {swarm_depth:.1f}"
            " (paper: Helix 28% shallower)"
        )
    report(f"fig7_geo_distributed_{model_name}", text)
