"""Serving-simulator throughput benchmark: hop-table engine vs. baseline.

Runs the flooded / Poisson-online / churn-soak scenarios at small, medium,
and large trace sizes through both the overhauled hop-table engine and the
frozen pre-overhaul engine (``repro.sim._legacy_reference``), then writes
``BENCH_sim.json`` at the repo root. The headline number is the flooded
fig12-small ``sim_flooded_large_speedup`` — the tentpole >=10x
simulated-tokens-per-wall-second target.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_sim.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.simbench import DEFAULT_SIM_OUTPUT, run_sim_bench  # noqa: E402


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small tiers only (seconds-scale, what tier-1 runs)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help=f"output path (default: {DEFAULT_SIM_OUTPUT})",
    )
    args = parser.parse_args()
    document = run_sim_bench(smoke=args.smoke, path=args.out)
    print(f"label: {document['label']}")
    for name, value in sorted(document["derived"].items()):
        print(f"  {name}: {value:.2f}")
    target = args.out if args.out is not None else DEFAULT_SIM_OUTPUT
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
