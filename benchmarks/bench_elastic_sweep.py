"""Nightly elastic sweep: residency, drains, autoscaling across many seeds.

Tier-1 runs a three-seed slice of the elastic family (see
``tests/test_elastic.py``); this script is the many-seed soak the
scheduled CI job runs, plus the PR's headline experiment:

* every seed in ``--seeds`` of the ``elastic`` family at ``--size``, each
  address verified end-to-end (invariants incl. zero-loss drains and
  never-route-through-nonresident-layers, per-seed determinism, the flow
  differential oracle);
* a controlled **warm-vs-cold spare recovery** experiment — kill the sole
  holder of the bottom layers, rejoin an idle spare, and measure MTTR
  with the spare's layers pre-staged vs pulled cold through the serving
  links — reported as ``mttr_warm_s`` / ``mttr_cold_s`` plus the goodput
  dip while the cold spare's weight transfer contends with inference
  traffic;
* headline elasticity numbers aggregated across the sweep — warm-up
  count/seconds/bytes, drains, autoscaler actions, MTTR where the churn
  disrupted goodput — written both into the report and
  (``--headline-out``) as a small standalone JSON for perf tracking;
* a JSON report with per-address status; every failing address carries
  its violations and the exact one-line repro command. Crashes inside
  one address are converted to violations, so the sweep always finishes
  and always writes its report.

Exit status is 1 when any address fails (0 = clean sweep), so CI fails
the job and uploads the failing-seed artifact.

Run: ``PYTHONPATH=src python benchmarks/bench_elastic_sweep.py
[--seeds 25] [--size full]
[--output benchmarks/results/elastic_sweep.json]
[--headline-out BENCH_elastic.json]``
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
import traceback
from pathlib import Path

from repro.cluster import A100_40G, Cluster, T4
from repro.core.placement_types import ModelPlacement
from repro.core.units import GBIT
from repro.flow.graph import FlowGraph
from repro.models.specs import ModelSpec
from repro.online import NodeFailure, NodeRecovery, OnlineController
from repro.scenarios import ELASTIC_FAMILY
from repro.scheduling import HelixScheduler
from repro.sim import Request, ResidencyConfig, Simulation
from repro.testkit import verify_scenario
from repro.testkit.invariants import Violation


def _mean(samples: list[float]) -> float | None:
    return round(sum(samples) / len(samples), 4) if samples else None


# ----------------------------------------------------------------------
# Warm-vs-cold spare recovery (the PR's headline experiment)
# ----------------------------------------------------------------------
def _spare_recovery(warm: bool) -> dict:
    """Kill the sole holder of layers [0, 6); a spare rejoins 1 s later.

    The two T4s hold 6 layers each of a model whose per-layer footprint a
    T4 cannot absorb more of, so the repaired placement *must* use the
    restored A100 spare — warm (layers pre-staged) or cold (pulled
    through the same 10 Gb/s links the inference traffic uses).
    """
    model = ModelSpec(
        name="elastic-wide-12L",
        num_layers=12,
        hidden_size=6656,
        num_heads=52,
        num_kv_heads=52,
        intermediate_size=17920,
    )
    cluster = Cluster(name="bench-elastic-spare")
    cluster.add_node("t4-0", T4, region="region-0")
    cluster.add_node("t4-1", T4, region="region-0")
    cluster.add_node("spare-0", A100_40G, region="region-0")
    cluster.connect_full_mesh(
        ["t4-0", "t4-1", "spare-0"], 10 * GBIT, 0.001,
        include_coordinator=True,
    )
    cluster.set_node_available("spare-0", False)
    cluster.validate()
    placement = ModelPlacement.from_intervals(
        12, {"t4-0": (0, 6), "t4-1": (6, 12)}
    )
    requests = [
        Request(f"r{i}", 16, 4, arrival_time=i * 0.1) for i in range(300)
    ]
    controller = OnlineController(
        model,
        events=[NodeFailure(6.0, "t4-0"), NodeRecovery(7.0, "spare-0")],
        replan=True,
        replan_lns_rounds=0,
    )
    config = ResidencyConfig(
        warm={"spare-0": (0, 12)} if warm else {},
        layer_bytes=5e8,
        warm_bonus=1.0,
    )
    flow = FlowGraph(cluster, model, placement).solve()
    scheduler = HelixScheduler(cluster, model, placement, flow=flow)
    sim = Simulation(
        cluster, model, placement, scheduler, requests,
        max_time=60.0, seed=0, controller=controller, residency=config,
    )
    metrics = sim.run()
    report = controller.report(sim, window=0.5)

    # Goodput during the weight-transfer window, relative to pre-fault:
    # the dip inference traffic pays while layer pulls share its links.
    dip = None
    warmups = [
        r for r in sim.residency.warmup_log if r.node_id == "spare-0"
    ]
    if warmups and not math.isnan(report.pre_disruption_goodput):
        t0 = warmups[0].started
        t1 = t0 + warmups[0].duration
        window = [
            rate for start, rate in report.timeline
            if t0 <= start < t1
        ]
        if window and report.pre_disruption_goodput > 0:
            dip = round(
                min(window) / report.pre_disruption_goodput, 4
            )
    return {
        "mttr_s": round(report.mttr, 4) if not math.isnan(report.mttr) else None,
        "warmups": len(sim.residency.warmup_log),
        "warmup_seconds": round(
            sum(r.duration for r in sim.residency.warmup_log), 4
        ),
        "warmup_bytes": int(
            sum(r.bytes_pulled for r in sim.residency.warmup_log)
        ),
        "goodput_dip_ratio": dip,
        "requests_finished": metrics.requests_finished,
    }


def warm_vs_cold() -> dict:
    warm = _spare_recovery(warm=True)
    cold = _spare_recovery(warm=False)
    speedup = None
    if warm["mttr_s"] and cold["mttr_s"]:
        speedup = round(cold["mttr_s"] / warm["mttr_s"], 4)
    return {
        "warm": warm,
        "cold": cold,
        "mttr_warm_s": warm["mttr_s"],
        "mttr_cold_s": cold["mttr_s"],
        "cold_over_warm_mttr": speedup,
        # The dip the cold rejoin's weight transfer carves out of serving
        # goodput (min windowed rate / pre-fault rate; lower = deeper).
        "goodput_dip_ratio_cold": cold["goodput_dip_ratio"],
    }


# ----------------------------------------------------------------------
# The seeded sweep
# ----------------------------------------------------------------------
def sweep(seeds: int, size: str) -> dict:
    """Run the elastic sweep; returns the JSON-serializable report."""
    rows = []
    failures = 0
    mttr_samples: list[float] = []
    recovery_ratios: list[float] = []
    warmups = drains = scale_ups = scale_downs = 0
    warmup_seconds = 0.0
    warmup_bytes = 0
    shed = lost = submitted = finished = 0
    started = time.perf_counter()
    for seed in range(seeds):
        t0 = time.perf_counter()
        repro = (
            "PYTHONPATH=src python -m repro.testkit "
            f"{ELASTIC_FAMILY} {seed} --size {size}"
        )
        elasticity = {}
        # A crash in one address must not abort the sweep: convert it to
        # a violation so the report (and its repro command) still lands
        # in the artifact.
        try:
            report = verify_scenario(
                ELASTIC_FAMILY, seed, size,
                determinism=True, flow_differential=True,
            )
            violations = list(report.violations)
            repro = report.scenario.repro_command()
            metrics = report.metrics
            if metrics is not None:
                shed += metrics.requests_shed
                lost += metrics.requests_lost
                submitted += metrics.requests_submitted
                finished += metrics.requests_finished
            if report.elasticity is not None:
                warmups += report.elasticity["warmups"]
                warmup_seconds += report.elasticity["warmup_seconds_total"]
                warmup_bytes += report.elasticity["warmup_bytes_total"]
                drains += report.elasticity["drains"]
                actions = report.elasticity["autoscaler_actions"]
                scale_ups += sum(1 for _, a, _ in actions if a == "add")
                scale_downs += sum(1 for _, a, _ in actions if a == "drain")
                elasticity = {
                    "warmups": report.elasticity["warmups"],
                    "drains": report.elasticity["drains"],
                    "autoscaler_actions": len(actions),
                }
            disruption = report.disruption
            if disruption is not None:
                if not math.isnan(disruption.mttr):
                    mttr_samples.append(disruption.mttr)
                    elasticity["mttr_s"] = round(disruption.mttr, 4)
                if not math.isnan(disruption.recovery_ratio):
                    recovery_ratios.append(disruption.recovery_ratio)
        except Exception:
            violations = [Violation(
                "sweep_crash",
                f"unhandled exception:\n{traceback.format_exc()}",
            )]
        row = {
            "family": ELASTIC_FAMILY,
            "seed": seed,
            "size": size,
            "ok": not violations,
            "seconds": round(time.perf_counter() - t0, 3),
            "repro": repro,
            **elasticity,
        }
        if violations:
            failures += 1
            row["violations"] = [
                {"invariant": v.invariant, "detail": v.detail}
                for v in violations
            ]
            print(
                f"FAIL {ELASTIC_FAMILY}/{seed}: {len(violations)} violations"
            )
            for v in violations:
                print(f"  {v}")
            print(f"  reproduce: {row['repro']}")
        else:
            print(f"ok   {ELASTIC_FAMILY}/{seed} {row['seconds']}s")
        rows.append(row)

    recovery = warm_vs_cold()
    headline = {
        "addresses": len(rows),
        "failures": failures,
        "warmups": warmups,
        "warmup_seconds_total": round(warmup_seconds, 4),
        "warmup_gbytes_total": round(warmup_bytes / 1e9, 3),
        "drains": drains,
        "autoscaler_scale_ups": scale_ups,
        "autoscaler_scale_downs": scale_downs,
        "mttr_mean_s": _mean(mttr_samples),
        "recovery_ratio_mean": _mean(recovery_ratios),
        "mttr_warm_s": recovery["mttr_warm_s"],
        "mttr_cold_s": recovery["mttr_cold_s"],
        "cold_over_warm_mttr": recovery["cold_over_warm_mttr"],
        "goodput_dip_ratio_cold": recovery["goodput_dip_ratio_cold"],
        "requests_submitted": submitted,
        "requests_finished": finished,
        "requests_shed": shed,
        "requests_lost": lost,
        "shed_rate": round(shed / submitted, 6) if submitted else None,
        "lost_rate": round(lost / submitted, 6) if submitted else None,
    }
    return {
        "family": ELASTIC_FAMILY,
        "size": size,
        "seeds": seeds,
        "failures": failures,
        "failing_addresses": [
            {"family": r["family"], "seed": r["seed"], "repro": r["repro"]}
            for r in rows if not r["ok"]
        ],
        "headline": headline,
        "warm_vs_cold": recovery,
        "wall_seconds": round(time.perf_counter() - started, 3),
        "results": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=25,
                        help="elastic seeds to sweep (0..N-1)")
    parser.add_argument("--size", default="full", choices=("smoke", "full"))
    parser.add_argument(
        "--output",
        default="benchmarks/results/elastic_sweep.json",
        help="where to write the full JSON report",
    )
    parser.add_argument(
        "--headline-out", default=None,
        help="also write just the headline numbers (e.g. BENCH_elastic.json)",
    )
    args = parser.parse_args(argv)

    report = sweep(args.seeds, args.size)
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    if args.headline_out:
        headline_doc = {
            "bench": "elastic_sweep",
            "size": report["size"],
            "seeds": report["seeds"],
            "derived": report["headline"],
        }
        Path(args.headline_out).write_text(
            json.dumps(headline_doc, indent=2) + "\n"
        )
    print(
        f"\n{len(report['results'])} addresses, "
        f"{report['failures']} failing, "
        f"{report['wall_seconds']}s -> {out}"
    )
    head = report["headline"]
    print(
        f"headline: mttr_warm={head['mttr_warm_s']}s "
        f"mttr_cold={head['mttr_cold_s']}s "
        f"(x{head['cold_over_warm_mttr']}) "
        f"dip={head['goodput_dip_ratio_cold']} "
        f"warmups={head['warmups']} drains={head['drains']} "
        f"scale_ups={head['autoscaler_scale_ups']}"
    )
    return 1 if report["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
