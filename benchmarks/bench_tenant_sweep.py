"""Nightly tenant sweep: fairness, SLO attainment, admission across seeds.

Tier-1 runs a three-seed slice of the ``tenant`` family (see
``tests/test_tenancy.py``); this script is the many-seed soak the
scheduled CI job runs, plus the PR's headline experiment:

* every seed in ``--seeds`` of the ``tenant`` family at ``--size``, each
  address verified end-to-end (invariants incl. per-tenant-KV-sums-to-
  pool-totals and no-cross-tenant-starvation, per-seed determinism, the
  flow differential oracle);
* a controlled **deficit-vs-priority selector** contrast — a sustained
  high-priority flood plus a trickle of low-priority work on a
  KV-constrained cluster. The deficit selector serves both tenants; the
  priority-only control starves the low tenant (the starvation watchdog
  fires), proving the fairness machinery does real work — reported as
  starvation counts and end-of-run Jain indices for both selectors;
* headline tenancy numbers aggregated across the sweep — mean/min Jain
  fairness index, SLO attainment rate (tenant-SLO pairs met / total),
  starvation events, shed split by priority class — written both into
  the report and (``--headline-out``) as a small standalone JSON for
  perf tracking;
* a JSON report with per-address status; every failing address carries
  its violations and the exact one-line repro command. Crashes inside
  one address are converted to violations, so the sweep always finishes
  and always writes its report.

Exit status is 1 when any address fails (0 = clean sweep), so CI fails
the job and uploads the failing-seed artifact.

Run: ``PYTHONPATH=src python benchmarks/bench_tenant_sweep.py
[--seeds 25] [--size full]
[--output benchmarks/results/tenant_sweep.json]
[--headline-out BENCH_tenant.json]``
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import traceback
from pathlib import Path

from repro.cluster import A100_40G, Cluster, L4, T4
from repro.core.placement_types import ModelPlacement
from repro.core.units import GBIT
from repro.flow.graph import FlowGraph
from repro.models.specs import ModelSpec
from repro.scenarios import TENANT_FAMILY
from repro.scheduling import HelixScheduler
from repro.sim import Request, Simulation
from repro.tenancy import (
    FairnessConfig,
    TenancyConfig,
    TenantRegistry,
    TenantSpec,
)
from repro.testkit import verify_scenario
from repro.testkit.invariants import Violation


def _mean(samples: list[float]) -> float | None:
    return round(sum(samples) / len(samples), 4) if samples else None


# ----------------------------------------------------------------------
# Deficit-vs-priority selector contrast (the PR's headline experiment)
# ----------------------------------------------------------------------
def _contended_run(selector: str) -> dict:
    """200 high-priority arrivals at 50/s vs 8 low-priority stragglers.

    The scheduler's expected-output KV charge is inflated so only a few
    requests fit concurrently: the pending queue stays deeply backlogged
    and the selector alone decides whether the low tenant ever runs.
    """
    model = ModelSpec(
        name="tenant-tiny-8L",
        num_layers=8,
        hidden_size=1024,
        num_heads=8,
        num_kv_heads=8,
        intermediate_size=2816,
        nominal_params=8 * (4 * 1024**2 + 3 * 1024 * 2816),
    )
    cluster = Cluster(name="bench-tenant-contended")
    cluster.add_node("a100-0", A100_40G, region="r0")
    cluster.add_node("l4-0", L4, region="r0")
    cluster.add_node("t4-0", T4, region="r0")
    cluster.add_node("t4-1", T4, region="r0")
    cluster.connect_full_mesh(
        ["a100-0", "l4-0", "t4-0", "t4-1"], 10 * GBIT, 0.001,
        include_coordinator=True,
    )
    cluster.validate()
    placement = ModelPlacement.from_intervals(
        8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
    )
    requests = [
        Request(f"vip:{i:03d}", 64, 48, arrival_time=i * 0.02, tenant_id="vip")
        for i in range(200)
    ] + [
        Request(f"lowly:{i}", 64, 48, arrival_time=i * 0.02, tenant_id="lowly")
        for i in range(8)
    ]
    requests.sort(key=lambda r: (r.arrival_time, r.request_id))
    registry = TenantRegistry([
        TenantSpec("vip", priority=2, rate_share=1.0),
        TenantSpec("lowly", priority=0, rate_share=1.0),
    ])
    flow = FlowGraph(cluster, model, placement).solve()
    scheduler = HelixScheduler(
        cluster, model, placement, flow=flow, expected_output_len=400000.0
    )
    sim = Simulation(
        cluster, model, placement, scheduler, requests,
        max_time=120.0, seed=0,
        tenancy=TenancyConfig(
            registry,
            fairness=FairnessConfig(
                mode="W", window=1.0, backlog_windows=3, selector=selector
            ),
        ),
    )
    metrics = sim.run()
    manager = sim.tenancy
    return {
        "selector": selector,
        "starvation_events": len(manager.starvation_events),
        "starved_tenants": sorted(
            {e.tenant_id for e in manager.starvation_events}
        ),
        "fairness_index": round(
            manager.fairness_index(sim.now), 4
        ),
        "tokens_by_tenant": dict(manager.tokens_by_tenant),
        "requests_finished": metrics.requests_finished,
    }


def deficit_vs_priority() -> dict:
    deficit = _contended_run("deficit")
    priority = _contended_run("priority")
    return {
        "deficit": deficit,
        "priority": priority,
        "starvation_events_deficit": deficit["starvation_events"],
        "starvation_events_priority": priority["starvation_events"],
        # The control MUST starve and the fair selector MUST not; a sweep
        # where this flips means the invariant lost its teeth.
        "control_demonstrates_starvation": (
            priority["starvation_events"] > 0
            and deficit["starvation_events"] == 0
        ),
    }


# ----------------------------------------------------------------------
# The seeded sweep
# ----------------------------------------------------------------------
def sweep(seeds: int, size: str) -> dict:
    """Run the tenant sweep; returns the JSON-serializable report."""
    rows = []
    failures = 0
    fairness_samples: list[float] = []
    slo_pairs = slo_met = 0
    starvation_events = 0
    shed_by_priority: dict[int, int] = {}
    shed = lost = submitted = finished = 0
    started = time.perf_counter()
    for seed in range(seeds):
        t0 = time.perf_counter()
        repro = (
            "PYTHONPATH=src python -m repro.testkit "
            f"{TENANT_FAMILY} {seed} --size {size}"
        )
        tenancy = {}
        # A crash in one address must not abort the sweep: convert it to
        # a violation so the report (and its repro command) still lands
        # in the artifact.
        try:
            report = verify_scenario(
                TENANT_FAMILY, seed, size,
                determinism=True, flow_differential=True,
            )
            violations = list(report.violations)
            repro = report.scenario.repro_command()
            metrics = report.metrics
            if metrics is not None:
                shed += metrics.requests_shed
                lost += metrics.requests_lost
                submitted += metrics.requests_submitted
                finished += metrics.requests_finished
            if report.tenancy is not None:
                fairness_samples.append(report.tenancy["fairness_index"])
                starvation_events += report.tenancy["starvation_events"]
                for priority, count in report.tenancy[
                    "shed_by_priority"
                ].items():
                    shed_by_priority[priority] = (
                        shed_by_priority.get(priority, 0) + count
                    )
                per_tenant = report.tenancy["per_tenant"]
                slo_pairs += len(per_tenant)
                slo_met += sum(1 for tm in per_tenant.values() if tm.slo_met)
                tenancy = {
                    "tenants": len(per_tenant),
                    "fairness_index": round(
                        report.tenancy["fairness_index"], 4
                    ),
                    "starvation_events": report.tenancy["starvation_events"],
                    "kv_samples": report.tenancy["kv_samples"],
                }
        except Exception:
            violations = [Violation(
                "sweep_crash",
                f"unhandled exception:\n{traceback.format_exc()}",
            )]
        row = {
            "family": TENANT_FAMILY,
            "seed": seed,
            "size": size,
            "ok": not violations,
            "seconds": round(time.perf_counter() - t0, 3),
            "repro": repro,
            **tenancy,
        }
        if violations:
            failures += 1
            row["violations"] = [
                {"invariant": v.invariant, "detail": v.detail}
                for v in violations
            ]
            print(
                f"FAIL {TENANT_FAMILY}/{seed}: {len(violations)} violations"
            )
            for v in violations:
                print(f"  {v}")
            print(f"  reproduce: {row['repro']}")
        else:
            print(f"ok   {TENANT_FAMILY}/{seed} {row['seconds']}s")
        rows.append(row)

    contrast = deficit_vs_priority()
    headline = {
        "addresses": len(rows),
        "failures": failures,
        "fairness_index_mean": _mean(fairness_samples),
        "fairness_index_min": (
            round(min(fairness_samples), 4) if fairness_samples else None
        ),
        "slo_pairs": slo_pairs,
        "slo_met": slo_met,
        "slo_attainment_rate": (
            round(slo_met / slo_pairs, 4) if slo_pairs else None
        ),
        "starvation_events": starvation_events,
        "shed_by_priority": {
            str(p): c for p, c in sorted(shed_by_priority.items())
        },
        "starvation_events_deficit": contrast["starvation_events_deficit"],
        "starvation_events_priority": contrast["starvation_events_priority"],
        "control_demonstrates_starvation": contrast[
            "control_demonstrates_starvation"
        ],
        "requests_submitted": submitted,
        "requests_finished": finished,
        "requests_shed": shed,
        "requests_lost": lost,
        "shed_rate": round(shed / submitted, 6) if submitted else None,
    }
    return {
        "family": TENANT_FAMILY,
        "size": size,
        "seeds": seeds,
        "failures": failures,
        "failing_addresses": [
            {"family": r["family"], "seed": r["seed"], "repro": r["repro"]}
            for r in rows if not r["ok"]
        ],
        "headline": headline,
        "deficit_vs_priority": contrast,
        "wall_seconds": round(time.perf_counter() - started, 3),
        "results": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=25,
                        help="tenant seeds to sweep (0..N-1)")
    parser.add_argument("--size", default="full", choices=("smoke", "full"))
    parser.add_argument(
        "--output",
        default="benchmarks/results/tenant_sweep.json",
        help="where to write the full JSON report",
    )
    parser.add_argument(
        "--headline-out", default=None,
        help="also write just the headline numbers (e.g. BENCH_tenant.json)",
    )
    args = parser.parse_args(argv)

    report = sweep(args.seeds, args.size)
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    if args.headline_out:
        headline_doc = {
            "bench": "tenant_sweep",
            "size": report["size"],
            "seeds": report["seeds"],
            "derived": report["headline"],
        }
        Path(args.headline_out).write_text(
            json.dumps(headline_doc, indent=2) + "\n"
        )
    print(
        f"\n{len(report['results'])} addresses, "
        f"{report['failures']} failing, "
        f"{report['wall_seconds']}s -> {out}"
    )
    head = report["headline"]
    print(
        f"headline: fairness mean={head['fairness_index_mean']} "
        f"min={head['fairness_index_min']} "
        f"slo={head['slo_met']}/{head['slo_pairs']} "
        f"starvation={head['starvation_events']} "
        f"control starves: {head['control_demonstrates_starvation']}"
    )
    return 1 if report["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
