"""Nightly batch-engine sweep: equivalence soak + the 100k diurnal case.

Tier-1 proves the cross-request batch engine observable-equal to the
hop-table engine on the 24-address classic matrix plus three seeds each
of chaos / elastic / tenant; this script is the many-seed soak the
scheduled CI job runs, plus the PR's headline perf experiment:

* every family in ``ALL_FAMILIES`` (the classic four plus chaos,
  elastic, tenant) across ``--seeds`` seeds at ``--size``, each address
  replayed through the full harness configuration (detection-mode
  controllers, residency/autoscaling, tenancy) on both engines with
  *exact* observable equality required — per-request token times, KV
  pools, executor and channel statistics, per-tenant token accounting;
* the **diurnal** perf case at ``--diurnal-tier`` (nightly default:
  ``large`` — 100,000 requests spanning simulated months) on the
  hop-table and batch engines, recording simulated-tokens-per-
  wall-second and asserting equal token counts. The headline target is
  >=1M tokens/wall-second on the batch engine;
* a JSON report with per-address status; every failing address carries
  its violations and an exact one-line repro command, so the uploaded
  artifact pins failing seeds.

Exit status is 1 when any address fails (0 = clean sweep), so CI fails
the job and uploads the failing-seed artifact.

Run: ``PYTHONPATH=src python benchmarks/bench_batch_sweep.py
[--seeds 10] [--size full] [--diurnal-tier large]
[--output benchmarks/results/batch_sweep.json]
[--headline-out BENCH_batch.json]``
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import traceback
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.perftrack import PerfTracker  # noqa: E402
from repro.bench.simbench import bench_sim_diurnal  # noqa: E402
from repro.scenarios import ALL_FAMILIES  # noqa: E402
from repro.testkit import check_batch_engine  # noqa: E402
from repro.testkit.invariants import Violation  # noqa: E402


def _repro(family: str, seed: int, size: str) -> str:
    return (
        "PYTHONPATH=src python -c \"from repro.testkit import "
        "check_batch_engine; [print(v) for v in "
        f"check_batch_engine('{family}', {seed}, '{size}')]\""
    )


def sweep(seeds: int, size: str, diurnal_tier: str) -> dict:
    """Run the batch-engine sweep; returns the JSON-serializable report."""
    rows = []
    failures = 0
    started = time.perf_counter()
    for family in ALL_FAMILIES:
        for seed in range(seeds):
            t0 = time.perf_counter()
            # A crash in one address must not abort the sweep: convert it
            # to a violation so the report (and its repro command) still
            # lands in the artifact.
            try:
                violations = check_batch_engine(family, seed, size)
            except Exception:
                violations = [Violation(
                    "sweep_crash",
                    f"unhandled exception:\n{traceback.format_exc()}",
                )]
            row = {
                "family": family,
                "seed": seed,
                "size": size,
                "ok": not violations,
                "seconds": round(time.perf_counter() - t0, 3),
                "repro": _repro(family, seed, size),
            }
            if violations:
                failures += 1
                row["violations"] = [
                    {"invariant": v.invariant, "detail": v.detail}
                    for v in violations
                ]
                print(f"FAIL {family}/{seed}: {len(violations)} violations")
                for v in violations[:5]:
                    print(f"  {v}")
                print(f"  reproduce: {row['repro']}")
            else:
                print(f"ok   {family}/{seed} {row['seconds']}s")
            rows.append(row)

    tracker = PerfTracker(label=f"batch-sweep-{diurnal_tier}")
    diurnal = bench_sim_diurnal(tracker, diurnal_tier)
    prefix = f"sim_diurnal_{diurnal_tier}"
    headline = {
        "addresses": len(rows),
        "failures": failures,
        "diurnal_tier": diurnal_tier,
        "diurnal_batch_tokens_per_s": round(
            diurnal[f"{prefix}_batch_tokens_per_s"], 1
        ),
        "diurnal_hop_table_tokens_per_s": round(
            diurnal[f"{prefix}_hop_table_tokens_per_s"], 1
        ),
        "diurnal_batch_vs_hop": round(diurnal[f"{prefix}_batch_vs_hop"], 3),
        "diurnal_span_days": round(diurnal[f"{prefix}_span_days"], 2),
    }
    return {
        "families": list(ALL_FAMILIES),
        "size": size,
        "seeds": seeds,
        "failures": failures,
        "failing_addresses": [
            {"family": r["family"], "seed": r["seed"], "repro": r["repro"]}
            for r in rows if not r["ok"]
        ],
        "headline": headline,
        "wall_seconds": round(time.perf_counter() - started, 3),
        "results": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=10,
                        help="seeds to sweep per family (0..N-1)")
    parser.add_argument("--size", default="full", choices=("smoke", "full"))
    parser.add_argument(
        "--diurnal-tier", default="large",
        choices=("small", "medium", "large"),
        help="diurnal perf tier (large = the 100k-request nightly case)",
    )
    parser.add_argument(
        "--output",
        default="benchmarks/results/batch_sweep.json",
        help="where to write the full JSON report",
    )
    parser.add_argument(
        "--headline-out", default=None,
        help="also write just the headline numbers (e.g. BENCH_batch.json)",
    )
    args = parser.parse_args(argv)

    report = sweep(args.seeds, args.size, args.diurnal_tier)
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    if args.headline_out:
        headline_doc = {
            "bench": "batch_sweep",
            "size": report["size"],
            "seeds": report["seeds"],
            "derived": report["headline"],
        }
        Path(args.headline_out).write_text(
            json.dumps(headline_doc, indent=2) + "\n"
        )
    head = report["headline"]
    print(
        f"\n{len(report['results'])} addresses, "
        f"{report['failures']} failing, "
        f"{report['wall_seconds']}s -> {out}"
    )
    print(
        f"headline: diurnal({head['diurnal_tier']}) batch "
        f"{head['diurnal_batch_tokens_per_s']:,.0f} tok/s "
        f"({head['diurnal_batch_vs_hop']}x hop, "
        f"{head['diurnal_span_days']} simulated days)"
    )
    return 1 if report["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
