"""Nightly batch-engine sweep: equivalence soak + the 100k diurnal case.

Thin wrapper over the ``batch-sweep`` experiment in :mod:`repro.exp` —
the all-families equivalence grid, the diurnal perf headline cell,
process-parallel execution (``--workers``), content-hash resume, and the
tokens/s headline aggregation all live there; this script only preserves
the historical CLI. Equivalent to::

    PYTHONPATH=src python -m repro.exp run batch-sweep \
        [--workers 8] [--seeds 10] [--size full] [--diurnal-tier large] \
        [--output benchmarks/results/batch_sweep.json] \
        [--headline-out BENCH_batch.json]

Exit status is 1 when any address fails (0 = clean sweep), so CI fails
the job and uploads the failing-seed artifact. Re-invoking after a kill
resumes from the per-cell records under ``benchmarks/results/exp``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.exp.__main__ import main as exp_main  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=10,
                        help="seeds to sweep per family (0..N-1)")
    parser.add_argument("--size", default="full", choices=("smoke", "full"))
    parser.add_argument(
        "--diurnal-tier", default="large",
        choices=("small", "medium", "large"),
        help="diurnal perf tier (large = the 100k-request nightly case)",
    )
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = inline)")
    parser.add_argument("--force", action="store_true",
                        help="re-execute cells even if their records exist")
    parser.add_argument(
        "--output",
        default="benchmarks/results/batch_sweep.json",
        help="where to write the full JSON report",
    )
    parser.add_argument(
        "--headline-out", default=None,
        help="also write just the headline numbers (e.g. BENCH_batch.json)",
    )
    args = parser.parse_args(argv)

    forwarded = [
        "run", "batch-sweep",
        "--seeds", str(args.seeds),
        "--size", args.size,
        "--diurnal-tier", args.diurnal_tier,
        "--workers", str(args.workers),
        "--output", args.output,
    ]
    if args.headline_out:
        forwarded += ["--headline-out", args.headline_out]
    if args.force:
        forwarded.append("--force")
    return exp_main(forwarded)


if __name__ == "__main__":
    sys.exit(main())
