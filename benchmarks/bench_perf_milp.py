"""Perf: the MILP layer — compile, branch-and-bound, and planner re-solves.

Like ``bench_perf_flow.py``, this module tracks *our own* performance. PR 1
made flow evaluation fast, leaving end-to-end Helix planning MILP-bound
(~22.7 s on the Fig. 12 small cluster); the scenarios here time the MILP
stack before/after its overhaul and write ``BENCH_milp.json`` at the repo
root:

* formulation compile under LNS-like constraint churn — incremental
  structure cache vs. full recompile per round;
* feasibility checking — one sparse mat-vec vs. the per-constraint loop;
* branch-and-bound ablation — pseudocost branching + diving + propagation
  on vs. off, counting nodes, LP solves, and time-to-first-incumbent on a
  formulation solved to proven optimality both ways;
* end-to-end Helix MILP planning (headline, target >= 3x) — the
  pre-optimization configuration (full-budget solve, rebuild-per-round
  LNS) vs. adaptive budget slicing + incremental bounds-tightened LNS
  re-solves, on both the HiGHS and bnb backends, with final placement
  throughput cross-checked for parity.

Run directly (``python benchmarks/bench_perf_milp.py``) or through pytest
(``pytest benchmarks/bench_perf_milp.py``).
"""

import pytest

from repro.bench.perftrack import (
    DEFAULT_MILP_OUTPUT,
    PerfTracker,
    bench_milp_bnb,
    bench_milp_compile,
    bench_milp_feascheck,
    bench_milp_planner,
)

PLANNER_SPEEDUP_TARGET = 3.0
PARITY_TOL = 1e-6


def run_full(include_planner: bool = True) -> PerfTracker:
    """Run the full-size configuration and write ``BENCH_milp.json``."""
    tracker = PerfTracker(label="milp-full")
    bench_milp_compile(tracker)
    bench_milp_feascheck(tracker)
    bench_milp_bnb(tracker)
    if include_planner:
        bench_milp_planner(tracker)
    tracker.write(DEFAULT_MILP_OUTPUT)
    return tracker


def summarize(tracker: PerfTracker) -> str:
    lines = [
        f"{t.name}: best {t.best_s * 1e3:.1f} ms over {t.repeats} laps"
        for t in tracker.timings
    ]
    lines += [f"{name}: {value:.3f}" for name, value in tracker.derived.items()]
    return "\n".join(lines)


@pytest.mark.perf
def test_perf_milp(report):
    tracker = run_full()
    report("perf_milp", summarize(tracker))
    derived = tracker.derived
    speedup = derived["milp_planner_speedup"]
    assert speedup >= PLANNER_SPEEDUP_TARGET, (
        f"end-to-end Helix MILP planning only {speedup:.2f}x faster than the "
        f"pre-optimization baseline (target {PLANNER_SPEEDUP_TARGET}x)"
    )
    assert derived["milp_planner_backend_parity"] <= PARITY_TOL, (
        "highs and bnb backends disagree on placement throughput by "
        f"{derived['milp_planner_backend_parity']:.3e}"
    )
    assert derived["bnb_node_factor"] > 1.0, (
        "pseudocost branching + diving should explore fewer nodes, got "
        f"factor {derived['bnb_node_factor']:.2f}"
    )
    assert derived["milp_compile_speedup"] > 1.0
    assert derived["milp_feascheck_speedup"] > 1.0


if __name__ == "__main__":
    print(summarize(run_full()))
