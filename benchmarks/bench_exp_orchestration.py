"""Orchestration self-benchmark: serial vs process-parallel, same grid.

Thin wrapper over ``python -m repro.exp bench``: runs the 100-address
classic scenario grid (4 families x ``--seeds``) twice into throwaway
stores — inline and with ``--workers`` processes — asserts per-cell
determinism fingerprints and aggregates are identical, and writes
``BENCH_exp.json`` with the speedup and the machine stamp (CPU model,
core count, worker count). Exit status 1 when the fingerprints diverge.

On a single-core machine the speedup is honestly ~1x and the stamp says
why; the multi-core nightly CI runner is where the ">=4x with 8 workers"
acceptance number is measured.

Run: ``PYTHONPATH=src python benchmarks/bench_exp_orchestration.py
[--workers 8] [--seeds 25] [--size full] [--output BENCH_exp.json]``
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.exp.__main__ import main as exp_main  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    return exp_main(["bench", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":
    sys.exit(main())
