"""Fig. 9: model-placement deep dive — isolate the placement's effect.

Every method's placement is served with *Helix's* scheduler (the paper
does exactly this to isolate placement quality). Paper shape, offline
LLaMA-70B: Helix's placement beats Petals' by 1.23x / 1.49x and Swarm's by
2.10x / 2.38x on the single / geo-distributed clusters, and Helix's
placement leaves almost no node under-utilized (Fig. 9b).
"""

import pytest

from benchmarks.conftest import BENCH_PROFILER, SIM_MAX_TIME, SIM_WARMUP
from repro.bench.runner import run_offline
from repro.bench.tables import format_table
from repro.models.specs import LLAMA_70B

PLACEMENTS = ("helix", "petals", "swarm")


def serve(planner_cache, trace, cluster_name, method):
    cluster = planner_cache.cluster(cluster_name)
    planner_result = planner_cache.plan(cluster_name, "llama-70b", method)
    return run_offline(
        cluster, LLAMA_70B, planner_result, "helix", trace,
        max_time=SIM_MAX_TIME, warmup=SIM_WARMUP, profiler=BENCH_PROFILER, placement_method=method,
    )


@pytest.mark.parametrize("cluster_name", ["single-24", "geo-24"])
def test_fig9_placement_deepdive(benchmark, planner_cache, bench_trace, report, cluster_name):
    results = {
        method: serve(planner_cache, bench_trace, cluster_name, method)
        for method in PLACEMENTS
    }
    benchmark.pedantic(
        lambda: serve(planner_cache, bench_trace, cluster_name, "helix"),
        rounds=1, iterations=1,
    )

    rows = []
    for method, result in results.items():
        m = result.metrics
        rows.append(
            [method, round(m.decode_throughput, 1),
             round(result.planner.max_throughput, 1),
             round(m.avg_pipeline_depth, 1)]
        )
    text = format_table(
        ["placement", "decode_tok_s", "maxflow_tok_s", "avg_depth"], rows
    )

    helix = results["helix"].metrics.decode_throughput
    swarm = results["swarm"].metrics.decode_throughput
    petals = results["petals"].metrics.decode_throughput
    assert helix > swarm, "Helix placement must beat Swarm's"
    assert helix >= petals * 0.95, "Helix placement must match or beat Petals'"
    # The placement-level max-flow ordering must match too.
    assert (
        results["helix"].planner.max_throughput
        >= results["petals"].planner.max_throughput - 1e-6
    )
    text += (
        f"\nhelix/petals {helix / petals:.2f}x (paper 1.23x single, 1.49x geo); "
        f"helix/swarm {helix / swarm:.2f}x (paper 2.10x single, 2.38x geo)"
    )
    # Fig. 9b companion: per-node layer counts of the Helix placement.
    layers = {
        nid: results["helix"].planner.placement.interval(nid).num_layers
        for nid in results["helix"].planner.placement.used_nodes
    }
    text += "\nhelix layers/node: " + " ".join(
        f"{nid}:{count}" for nid, count in sorted(layers.items())
    )
    report(f"fig9_placement_deepdive_{cluster_name}", text)
