"""Fig. 11: ablation of the two MILP optimizations (§4.5, §6.8).

(a) Cluster pruning: the placement found on the pruned cluster serves the
    full cluster essentially as well (paper: pruning even *helped* by 16%/2%
    because the smaller search space yields better incumbents in budget).
(b) Initial values: warm-starting the branch-and-bound from a heuristic
    placement reaches a given solution quality faster than starting cold
    (paper: 43%/8% less wall-clock on the 24-/42-node clusters).

Both ablations run on the Fig. 12 cluster size (plus the geo cluster for
pruning) so the solver effects are measurable within CI-scale budgets.
"""

import time

from repro.bench.tables import format_table
from repro.core.errors import SolverError
from repro.cluster import Profiler, geo_distributed_24, small_cluster_fig12
from repro.models.specs import LLAMA_30B, LLAMA_70B
from repro.placement import HelixMilpPlanner


def pruning_ablation():
    """Throughput of placements found with vs without pruning (geo-24)."""
    results = {}
    for label, prune in (("with_pruning", 6), ("without_pruning", None)):
        planner = HelixMilpPlanner(
            geo_distributed_24(), LLAMA_70B, Profiler(),
            prune_degree=prune, time_limit=15.0, mip_rel_gap=0.05,
            lns_rounds=3, lns_window=8, lns_time_limit=6.0,
        )
        results[label] = planner.plan()
    return results


def initial_value_ablation():
    """Time for warm vs cold branch-and-bound to reach the same quality."""
    cluster = small_cluster_fig12()
    runs = {}
    for label, hints in (("warm_start", "auto"), ("cold_start", None)):
        planner = HelixMilpPlanner(
            cluster, LLAMA_30B, Profiler(),
            backend="bnb", time_limit=25.0, mip_rel_gap=0.05, hints=hints,
        )
        start = time.perf_counter()
        try:
            result = planner.plan()
            value = result.milp.objective
        except SolverError:
            # A cold start may fail to find ANY incumbent in budget — the
            # strongest possible version of the paper's Fig. 11b point.
            result = None
            value = float("nan")
        runs[label] = {
            "value": value,
            "trajectory": list(planner.last_trajectory or []),
            "total_s": time.perf_counter() - start,
        }
    # Common quality target: 90% of the best incumbent either run found,
    # so the comparison is apples to apples.
    finite = [
        run["value"] for run in runs.values() if run["value"] == run["value"]
    ]
    target = 0.9 * max(finite)
    timings = {}
    for label, run in runs.items():
        reach = next(
            (p.elapsed for p in run["trajectory"]
             if p.incumbent == p.incumbent and p.incumbent >= target),
            float("inf"),
        )
        timings[label] = {
            "value": run["value"],
            "total_s": run["total_s"],
            "time_to_target_s": reach,
        }
    return timings


def test_fig11a_cluster_pruning(benchmark, report):
    results = benchmark.pedantic(pruning_ablation, rounds=1, iterations=1)
    rows = [
        [label, round(result.max_throughput, 1), result.num_variables,
         result.num_constraints]
        for label, result in results.items()
    ]
    text = format_table(["variant", "maxflow_tok_s", "vars", "cstr"], rows)
    with_p = results["with_pruning"].max_throughput
    without_p = results["without_pruning"].max_throughput
    # The robust half of the claim is the problem-size reduction; the
    # throughput comparison is reported but only sanity-banded, since both
    # solves are heavily time-capped and LNS is randomized (the paper saw
    # pruning *help* by 16%/2%; we see run-to-run swings either way).
    assert with_p >= 0.5 * without_p
    assert results["with_pruning"].num_variables < results[
        "without_pruning"
    ].num_variables
    text += f"\npruned/unpruned throughput = {with_p / max(without_p, 1e-9):.2f}x (paper 1.16x / 1.02x)"
    report("fig11a_cluster_pruning", text)


def test_fig11b_initial_values(benchmark, report):
    timings = benchmark.pedantic(initial_value_ablation, rounds=1, iterations=1)
    rows = [
        [label, round(t["value"], 1), round(t["time_to_target_s"], 2),
         round(t["total_s"], 2)]
        for label, t in timings.items()
    ]
    text = format_table(
        ["variant", "maxflow_tok_s", "time_to_target_s", "total_s"], rows
    )
    warm = timings["warm_start"]["time_to_target_s"]
    cold = timings["cold_start"]["time_to_target_s"]
    # The warm start holds a target-quality incumbent essentially from the
    # first instant; the cold solver has to discover one (and may not,
    # within budget — time inf).
    assert warm < float("inf"), "warm start must have a quality incumbent"
    assert warm <= cold + 0.5
    text += (
        f"\nwarm reaches the common target at {warm:.2f}s vs cold at "
        f"{cold:.2f}s (paper: warm starts 43%/8% faster)"
    )
    report("fig11b_initial_values", text)
