"""Fig. 10: request-scheduling deep dive — isolate the scheduler's effect.

All schedulers run on *Helix's* placement (the paper does the same).
Paper shape, offline LLaMA-70B: Helix's IWRR-over-max-flow scheduling
beats Swarm's throughput-proportional routing by ~30%/22%, random by
~29%/15% (single/geo), and shortest-queue-first by ~19% (geo); the
baselines also build up queueing on the slow links (the Fig. 10b
congestion case study).
"""

import pytest

from benchmarks.conftest import BENCH_PROFILER, SIM_MAX_TIME, SIM_WARMUP
from repro.bench.runner import make_scheduler, run_offline
from repro.bench.tables import format_table
from repro.models.specs import LLAMA_70B

SCHEDULERS = ("helix", "swarm", "random", "shortest-queue")


def serve(planner_cache, trace, cluster_name, scheduler):
    cluster = planner_cache.cluster(cluster_name)
    planner_result = planner_cache.plan(cluster_name, "llama-70b", "helix")
    return run_offline(
        cluster, LLAMA_70B, planner_result, scheduler, trace,
        max_time=SIM_MAX_TIME, warmup=SIM_WARMUP, profiler=BENCH_PROFILER, placement_method="helix",
    )


@pytest.mark.parametrize("cluster_name", ["single-24", "geo-24"])
def test_fig10_scheduling_deepdive(
    benchmark, planner_cache, bench_trace, report, cluster_name
):
    results = {
        scheduler: serve(planner_cache, bench_trace, cluster_name, scheduler)
        for scheduler in SCHEDULERS
    }
    benchmark.pedantic(
        lambda: serve(planner_cache, bench_trace, cluster_name, "helix"),
        rounds=1, iterations=1,
    )

    rows = []
    for scheduler, result in results.items():
        m = result.metrics
        rows.append(
            [scheduler, round(m.decode_throughput, 1),
             round(m.prompt_latency.p50, 2), m.requests_finished]
        )
    text = format_table(
        ["scheduler", "decode_tok_s", "prompt_p50_s", "finished"], rows
    )

    helix = results["helix"].metrics.decode_throughput
    for baseline in ("swarm", "random"):
        other = results[baseline].metrics.decode_throughput
        assert helix >= other * 0.98, (
            f"Helix scheduling should at least match {baseline} "
            f"({helix:.1f} vs {other:.1f})"
        )
    ratios = ", ".join(
        f"helix/{b} {helix / results[b].metrics.decode_throughput:.2f}x"
        for b in ("swarm", "random", "shortest-queue")
    )
    text += f"\n{ratios} (paper: 1.30x/1.29x single, 1.22x/1.15x/1.19x geo)"
    report(f"fig10_scheduling_deepdive_{cluster_name}", text)
