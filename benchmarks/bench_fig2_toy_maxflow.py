"""Fig. 2: graph abstraction of the 3-node toy cluster and its max flow.

The paper's example places layers on an A100 and two T4s with Mb/s-scale
links and reads the cluster's serving throughput off the max flow between
source and sink. We rebuild the same directed topology, place a small model
the same way (A100 holds the first two thirds twice-replicated by T4-1,
T4-2 holds the tail), and verify the structural properties the figure
illustrates: only valid connections appear, and max flow = min cut.
"""

from repro.cluster import Profiler, toy_cluster_fig2
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph
from repro.models.specs import ModelSpec

TOY_MODEL = ModelSpec(
    name="toy-3L",
    num_layers=3,
    hidden_size=4096,
    num_heads=32,
    num_kv_heads=32,
    intermediate_size=11008,
)


def build_and_solve():
    cluster = toy_cluster_fig2()
    placement = ModelPlacement.from_intervals(
        3, {"a100": (0, 2), "t4-1": (2, 3), "t4-2": (2, 3)}
    )
    graph = FlowGraph(cluster, TOY_MODEL, placement, Profiler())
    return graph, graph.solve()


def test_fig2_toy_maxflow(benchmark, report):
    graph, solution = benchmark(build_and_solve)
    connections = set(graph.valid_connections())
    # Fig. 2's validity rules: coordinator feeds only the first-layer
    # holder; last-layer holders feed the coordinator.
    assert ("coordinator", "a100") in connections
    assert ("a100", "t4-1") in connections
    assert ("a100", "t4-2") in connections
    assert ("t4-2", "coordinator") in connections
    assert ("coordinator", "t4-1") not in connections
    assert solution.max_flow > 0
    # Throughput is bounded by the A100's two coordinator-side links.
    entry_capacity = solution.connection_capacities[("coordinator", "a100")]
    assert solution.max_flow <= entry_capacity + 1e-6

    lines = [f"max flow: {solution.max_flow:.1f} tokens/s"]
    for (src, dst), flow in sorted(solution.connection_flows.items()):
        cap = solution.connection_capacities[(src, dst)]
        lines.append(f"  {src:12s} -> {dst:12s} flow {flow:9.1f} / cap {cap:9.1f}")
    report("fig2_toy_maxflow", "\n".join(lines))
